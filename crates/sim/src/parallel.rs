//! Conservative time-window parallel discrete-event execution (PDES).
//!
//! The paper's simulation platform (§4.2) is a parallel discrete-event
//! simulator: a framework layer handles synchronization, communication and
//! parallel acceleration, and function modules plug into it. This module is
//! that framework layer.
//!
//! The classic conservative scheme: partition the model into [`Shard`]s
//! whose only interaction is timestamped messages with a minimum delivery
//! latency (the *lookahead*, e.g. the router pipeline depth between a
//! sub-ring and the main ring). All shards can then safely advance
//! `lookahead` cycles in parallel without seeing each other's messages,
//! because anything a peer emits inside the window cannot become visible
//! until the next window. At each window boundary the engine routes the
//! emitted envelopes into the destination shards' inboxes.
//!
//! Determinism: every envelope carries its source shard and a per-source
//! sequence number, and inboxes deliver in `(timestamp, source, sequence)`
//! order — a total order fixed at emission time, independent of both host
//! thread interleaving and the order envelopes happen to arrive in. The
//! sequence counters live in the engine and persist across windows, so the
//! order is total across the whole run, not just within one window.
//! Results are therefore identical for any worker count, which
//! [`ParallelEngine::run_sequential`] exists to verify.
//!
//! A second property falls out of absolute timestamps: the window length
//! never affects results, only synchronization frequency. Any window no
//! longer than the lookahead is conservative, so running cycle-by-cycle
//! (`run_windowed(n, 1)` with a 1-cycle clamp at the end of a run) produces
//! the same states and messages as full-lookahead windows.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as MemOrder};
use std::sync::Mutex;
use std::time::Instant;

use crate::contract::HorizonContract;
use crate::prof::{
    EngineProfile, HostPhase, HostSlice, HostTrack, ProfConfig, Telemetry, WorkerScratch,
};
use crate::Cycle;

/// A horizon contract paired with the classifier that maps a message to
/// its contract class. Plain function pointer so the pair stays `Copy`
/// across worker threads.
type ContractCheck<M> = (HorizonContract, fn(&M) -> usize);

/// Timestamped message addressed to another shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Cycle at which the message becomes visible to the destination.
    pub at: Cycle,
    /// Destination shard index.
    pub to: usize,
    /// Source shard index (stamped by the [`Outbox`]).
    pub from: usize,
    /// Per-source emission sequence number (stamped by the [`Outbox`]).
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

/// Heap entry ordered min-first by `(at, from, seq)` — the deterministic
/// delivery order. The payload never participates in comparisons.
#[derive(Debug, Clone)]
struct Pending<M> {
    at: Cycle,
    from: usize,
    seq: u64,
    msg: M,
}

impl<M> Pending<M> {
    fn key(&self) -> (Cycle, usize, u64) {
        (self.at, self.from, self.seq)
    }
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Pending<M> {}

impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key().cmp(&self.key())
    }
}

/// Messages delivered to a shard, popped in `(timestamp, source shard,
/// sequence)` order — so same-cycle delivery is deterministic no matter in
/// which order the host threads happened to route the envelopes.
#[derive(Debug, Clone)]
pub struct Inbox<M> {
    heap: BinaryHeap<Pending<M>>,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> Inbox<M> {
    /// Pops the next message due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<M> {
        if self.heap.peek().is_some_and(|p| p.at <= now) {
            self.heap.pop().map(|p| p.msg)
        } else {
            None
        }
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Due-cycle of the earliest pending message, if any. Together with
    /// [`Shard::next_event`] this bounds the next cycle at which the owning
    /// shard can possibly act.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|p| p.at)
    }

    /// Bulk insertion: one capacity reservation for the whole batch instead
    /// of a possible reallocation per envelope.
    fn push_all(&mut self, envs: impl IntoIterator<Item = Envelope<M>>) {
        self.heap.extend(envs.into_iter().map(|env| Pending {
            at: env.at,
            from: env.from,
            seq: env.seq,
            msg: env.msg,
        }));
    }
}

/// Collects messages a shard emits during a window, stamping each with the
/// source shard and a monotonically increasing sequence number.
#[derive(Debug)]
pub struct Outbox<M> {
    from: usize,
    window_end: Cycle,
    next_seq: u64,
    envelopes: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    /// `envelopes` is a recycled buffer (cleared here) so steady-state
    /// windows allocate nothing.
    fn new(from: usize, window_end: Cycle, next_seq: u64, mut envelopes: Vec<Envelope<M>>) -> Self {
        envelopes.clear();
        Self {
            from,
            window_end,
            next_seq,
            envelopes,
        }
    }

    /// Sends `msg` to shard `to`, visible at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the end of the current window — that
    /// would violate the lookahead contract and make parallel execution
    /// diverge from sequential execution.
    pub fn send(&mut self, to: usize, at: Cycle, msg: M) {
        assert!(
            at >= self.window_end,
            "lookahead violation: message timestamped {at} inside window ending {}",
            self.window_end
        );
        self.envelopes.push(Envelope {
            at,
            to,
            from: self.from,
            seq: self.next_seq,
            msg,
        });
        self.next_seq += 1;
    }
}

/// A partition of the model that advances independently within a window.
pub trait Shard: Send {
    /// Message type exchanged between shards.
    type Msg: Send;

    /// Advances the shard through cycles `[from, to)`, consuming inbox
    /// messages as they come due and emitting cross-shard messages with
    /// timestamps `>= to` into `outbox`.
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
    );

    /// Event horizon: the earliest cycle at or after `now` at which this
    /// shard might act — consume an already-delivered message, change
    /// externally visible state (including statistics that are not pure
    /// idle bookkeeping), or emit an envelope. `None` means the shard is
    /// fully drained and only a new inbox message can re-activate it
    /// (the engine accounts for inbox due-cycles separately).
    ///
    /// The contract is conservative: returning a cycle *earlier* than the
    /// true next state change is always safe (it merely disables
    /// skipping); returning a *later* cycle breaks bit-identity. The
    /// default, `Some(now)`, declares the shard permanently active and
    /// opts it out of cycle skipping entirely.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Fast-forwards the shard across `[from, to)`, a range the engine has
    /// proven event-free via [`next_event`](Self::next_event) and the
    /// inbox. Implementations must apply exactly the state changes
    /// `run_window` would have applied over an idle range (typically
    /// idle-counter bookkeeping) and must not emit messages. The default
    /// does nothing, matching the default always-active horizon (which
    /// guarantees this is never called).
    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        let _ = (from, to);
    }
}

/// One shard's per-window execution state: the shard itself, its inbox,
/// and its persistent sequence counter, keyed by shard index.
struct Lane<'a, S: Shard> {
    i: usize,
    shard: &'a mut S,
    inbox: &'a mut Inbox<S::Msg>,
    seq: &'a mut u64,
}

/// Earliest cycle at which `lane` can possibly act at or after `now`:
/// the shard's own horizon or its earliest undelivered message, whichever
/// comes first. `u64::MAX` encodes "never without new input".
fn lane_horizon<S: Shard>(lane: &Lane<'_, S>, now: Cycle) -> u64 {
    let shard = lane.shard.next_event(now).unwrap_or(u64::MAX);
    let inbox = lane.inbox.next_due().unwrap_or(u64::MAX);
    shard.min(inbox)
}

/// One shard's window: drain freshly routed envelopes into the inbox, then
/// either fast-forward (when the shard's horizon and inbox both clear the
/// window) or run the model and park the produced envelopes for the
/// routing phase. Returns whether the window was skipped.
fn window_step<S: Shard>(
    lane: &mut Lane<'_, S>,
    from: Cycle,
    to: Cycle,
    staging: &[Mutex<Vec<Envelope<S::Msg>>>],
    produced: &[Mutex<Vec<Envelope<S::Msg>>>],
    skip: bool,
    contract: Option<&ContractCheck<S::Msg>>,
) -> bool {
    {
        let mut slot = staging[lane.i].lock().expect("staging lock");
        lane.inbox.push_all(slot.drain(..));
    }
    if skip && lane_horizon(lane, from) >= to {
        // Nothing can happen in [from, to): skip the per-cycle loop. No
        // outbox is created — a quiescent shard emits nothing, so the
        // sequence counter is untouched and delivery order is unchanged.
        lane.shard.skip_window(from, to);
        return true;
    }
    let buf = std::mem::take(&mut *produced[lane.i].lock().expect("produced lock"));
    let mut outbox = Outbox::new(lane.i, to, *lane.seq, buf);
    lane.shard.run_window(from, to, lane.inbox, &mut outbox);
    *lane.seq = outbox.next_seq;
    // Debug-build horizon cross-check: every envelope emitted this window
    // must respect the statically derived contract — reachable pair, and
    // timestamp no earlier than window start + the pair/class floor. This
    // is the runtime half of lint code SL0421: both sides evaluate the
    // same `HorizonContract`, so a static "clean" verdict and a quiet
    // debug run certify the same predicate.
    #[cfg(debug_assertions)]
    if let Some((contract, classify)) = contract {
        for env in &outbox.envelopes {
            let floor = contract.floor(env.from, env.to, classify(&env.msg));
            assert!(
                floor != u64::MAX,
                "horizon contract: shard {} must never message shard {}",
                env.from,
                env.to
            );
            assert!(
                env.at >= from.saturating_add(floor),
                "horizon contract: shard {} message to {} timestamped {} \
                 under-runs floor {} from window start {}",
                env.from,
                env.to,
                env.at,
                floor,
                from
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = contract;
    *produced[lane.i].lock().expect("produced lock") = outbox.envelopes;
    false
}

/// Routing phase: move every produced envelope to its destination's staging
/// row. Envelope keys already fix the delivery order, so this only has to
/// be exhaustive, not ordered. Returns the earliest due-cycle routed this
/// window (`u64::MAX` when no envelope moved) — which feeds the engine's
/// whole-run fast-forward decision — and the number of envelopes moved,
/// which feeds the self-profiler's exchange telemetry.
fn route_window<M>(
    produced: &[Mutex<Vec<Envelope<M>>>],
    staging: &[Mutex<Vec<Envelope<M>>>],
) -> (u64, u64) {
    let n = staging.len();
    let mut earliest = u64::MAX;
    let mut count = 0u64;
    for slot in produced {
        for env in slot.lock().expect("produced lock").drain(..) {
            assert!(env.to < n, "unknown shard {}", env.to);
            earliest = earliest.min(env.at);
            count += 1;
            staging[env.to].lock().expect("staging lock").push(env);
        }
    }
    (earliest, count)
}

/// Nanoseconds elapsed since `t0` on the monotonic host clock.
fn ns_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds from `epoch` to `t` (saturating at zero and `u64::MAX`).
fn ns_between(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Sense-reversing spin barrier. The chip synchronizes every `lookahead`
/// (typically 2) cycles — tens of thousands of window boundaries per run —
/// so parties spin instead of sleeping: a futex-based barrier's sleep/wake
/// round-trip costs more than an entire window of simulation. After a
/// bounded spin each check yields the CPU, so oversubscribed hosts (more
/// workers than cores) still make progress instead of burning whole
/// scheduler quanta. The last party to arrive runs a serial section (the
/// routing phase) before releasing the others.
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Spins this many times before each yield while waiting.
    const SPINS_PER_YIELD: u32 = 256;

    fn new(parties: usize) -> Self {
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all parties arrive; the last runs `serial` first.
    fn wait_with(&self, serial: impl FnOnce()) {
        let generation = self.generation.load(MemOrder::Acquire);
        if self.arrived.fetch_add(1, MemOrder::AcqRel) + 1 == self.parties {
            serial();
            // Reset before the release so parties freed by the new
            // generation start the next arrival count from zero.
            self.arrived.store(0, MemOrder::Relaxed);
            self.generation.store(generation + 1, MemOrder::Release);
        } else {
            let mut spins = 0;
            while self.generation.load(MemOrder::Acquire) == generation {
                spins += 1u32;
                if spins.is_multiple_of(Self::SPINS_PER_YIELD) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Drives a set of shards with conservative window synchronization.
///
/// With cycle skipping enabled (the default), the engine additionally
/// exploits each shard's [`Shard::next_event`] horizon at two levels:
/// within a window, a shard whose horizon and inbox both clear the window
/// end fast-forwards via [`Shard::skip_window`] instead of stepping; and
/// at window boundaries, when *every* shard's horizon, every undelivered
/// inbox message, and every just-routed envelope lie beyond the boundary,
/// the clock jumps straight to the earliest of them (clamped to the run
/// end). Both are provably result-neutral: absolute timestamps and the
/// `(at, from, seq)` delivery order mean a cycle nobody acts in is
/// indistinguishable from a cycle that was never stepped.
#[derive(Debug)]
pub struct ParallelEngine<S: Shard> {
    shards: Vec<S>,
    inboxes: Vec<Inbox<S::Msg>>,
    seqs: Vec<u64>,
    lookahead: Cycle,
    now: Cycle,
    skip_enabled: bool,
    stepped_cycles: u64,
    skipped_cycles: u64,
    // Persistent window-exchange buffers: workers park each window's
    // envelopes in `produced`; the routing phase moves them to the
    // destination's `staging` row, which the owner drains into its inbox
    // at the next window start. Held in the engine so per-call (and in the
    // cycle-stepped facade, per-cycle) invocations reuse the allocations.
    produced: Vec<Mutex<Vec<Envelope<S::Msg>>>>,
    staging: Vec<Mutex<Vec<Envelope<S::Msg>>>>,
    // Host-side self-profiling. None (the default) costs one branch per
    // instrumentation site and reads no clocks.
    prof: Option<Box<EngineProfile>>,
    // Horizon contract + message classifier, enforced on every emitted
    // envelope in debug builds only; release builds carry the data but
    // never evaluate it.
    contract: Option<ContractCheck<S::Msg>>,
}

impl<S: Shard> ParallelEngine<S> {
    /// Creates an engine over `shards` with the given `lookahead` (minimum
    /// cross-shard message latency, in cycles).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero.
    pub fn new(shards: Vec<S>, lookahead: Cycle) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead > 0, "lookahead must be positive");
        let inboxes = shards.iter().map(|_| Inbox::default()).collect();
        let seqs = vec![0; shards.len()];
        let produced = shards.iter().map(|_| Mutex::new(Vec::new())).collect();
        let staging = shards.iter().map(|_| Mutex::new(Vec::new())).collect();
        Self {
            shards,
            inboxes,
            seqs,
            lookahead,
            now: 0,
            skip_enabled: true,
            stepped_cycles: 0,
            skipped_cycles: 0,
            produced,
            staging,
            prof: None,
            contract: None,
        }
    }

    /// Installs a horizon contract and the classifier mapping each message
    /// to its contract class. Debug builds then assert, for every emitted
    /// envelope, that the destination is reachable and the timestamp
    /// clears window-start + the contract floor; release builds ignore it.
    ///
    /// # Panics
    ///
    /// Panics if the contract covers a different number of shards.
    pub fn set_contract(&mut self, contract: HorizonContract, classify: fn(&S::Msg) -> usize) {
        assert_eq!(
            contract.shards(),
            self.shards.len(),
            "contract shard count mismatch"
        );
        self.contract = Some((contract, classify));
    }

    /// Removes an installed horizon contract (for A/B-testing that the
    /// checker is observation-only).
    pub fn clear_contract(&mut self) {
        self.contract = None;
    }

    /// The installed horizon contract, if any.
    pub fn contract(&self) -> Option<&HorizonContract> {
        self.contract.as_ref().map(|(c, _)| c)
    }

    /// Enables (or, with a disabled config, tears down) host-side
    /// self-profiling. Profiling is read-only with respect to the
    /// simulation — results stay bit-identical — and accumulates across
    /// subsequent [`run_windowed`](Self::run_windowed) calls.
    pub fn enable_profiling(&mut self, config: ProfConfig) {
        self.prof = if config.enabled {
            Some(Box::new(EngineProfile::new(config, self.shards.len())))
        } else {
            None
        };
    }

    /// The accumulated host-side profile, when profiling is enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.prof.as_deref()
    }

    /// Enables or disables event-horizon cycle skipping (default: on).
    /// Results are bit-identical either way; off exists for A/B timing and
    /// for flushing out horizon bugs.
    pub fn set_skip_enabled(&mut self, enabled: bool) {
        self.skip_enabled = enabled;
    }

    /// Whether event-horizon cycle skipping is active.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// Shard-cycles executed through `run_window` (one unit = one shard
    /// advanced one cycle the slow way).
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Shard-cycles fast-forwarded through `skip_window`.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Fraction of shard-cycles skipped so far (0 when nothing ran).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }

    /// Current simulation time (start of the next window).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared view of the shards (for collecting statistics).
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Exclusive view of the shards.
    pub fn shards_mut(&mut self) -> &mut [S] {
        &mut self.shards
    }

    /// Consumes the engine and returns its shards.
    pub fn into_shards(self) -> Vec<S> {
        self.shards
    }

    /// Cross-shard messages routed but not yet consumed by any shard.
    pub fn pending_messages(&self) -> usize {
        self.inboxes.iter().map(Inbox::len).sum()
    }

    /// Runs `cycles` further cycles with one persistent worker thread per
    /// shard; equivalent to [`run_windowed`](Self::run_windowed) with as
    /// many workers as shards.
    pub fn run_parallel(&mut self, cycles: Cycle) {
        self.run_windowed(cycles, self.shards.len());
    }

    /// Runs `cycles` further cycles on the calling thread with identical
    /// results; the single-worker degenerate case of
    /// [`run_windowed`](Self::run_windowed).
    pub fn run_sequential(&mut self, cycles: Cycle) {
        self.run_windowed(cycles, 1);
    }

    /// The windowing core: advances all shards by `cycles` using up to
    /// `workers` host threads (clamped to `1..=shards`). One worker runs
    /// inline on the calling thread with no synchronization; more workers
    /// split the shards into contiguous groups, synchronize at window
    /// boundaries with a barrier, and a single routing phase moves
    /// envelopes between windows. Results are bit-identical for every
    /// worker count.
    pub fn run_windowed(&mut self, cycles: Cycle, workers: usize) {
        let end = self.now + cycles;
        if self.now >= end {
            return;
        }
        let n = self.shards.len();
        let workers = workers.clamp(1, n);
        let lookahead = self.lookahead;
        let start = self.now;
        let skip = self.skip_enabled;
        let Self {
            shards,
            inboxes,
            seqs,
            produced,
            staging,
            prof,
            contract,
            ..
        } = self;
        let (produced, staging) = (&produced[..], &staging[..]);
        let prof = prof.as_deref_mut();
        let contract = contract.as_ref();
        // Copyable profiling context, extracted up front so worker threads
        // never touch the profile itself. All dead when profiling is off.
        let epoch = prof.as_ref().map(|p| p.epoch());
        let sample_every = prof.as_ref().map_or(1, |p| p.config().sample_every.max(1));
        let base_windows = prof.as_ref().map_or(0, |p| p.telemetry().windows);
        let env_bytes = std::mem::size_of::<Envelope<S::Msg>>() as u64;

        let mut lanes: Vec<Lane<'_, S>> = shards
            .iter_mut()
            .zip(inboxes.iter_mut())
            .zip(seqs.iter_mut())
            .enumerate()
            .map(|(i, ((shard, inbox), seq))| Lane {
                i,
                shard,
                inbox,
                seq,
            })
            .collect();
        let (mut stepped, mut skipped) = (0u64, 0u64);
        if workers == 1 {
            let t_busy = epoch.map(|_| Instant::now());
            let mut scratch = epoch.map(|_| WorkerScratch::new(0, n));
            let mut tel = epoch.map(|_| Telemetry::default());
            let mut now = start;
            while now < end {
                let to = (now + lookahead).min(end);
                let win = base_windows + tel.as_ref().map_or(0, |t| t.windows);
                let sampled = epoch.is_some() && win.is_multiple_of(sample_every);
                let mut stepped_lanes = 0usize;
                for lane in &mut lanes {
                    let t0 = epoch.map(|_| Instant::now());
                    let was_skipped = window_step(lane, now, to, staging, produced, skip, contract);
                    if was_skipped {
                        skipped += to - now;
                    } else {
                        stepped += to - now;
                        stepped_lanes += 1;
                    }
                    if let (Some(epoch), Some(scratch), Some(t0)) = (epoch, scratch.as_mut(), t0) {
                        let ns = ns_since(t0);
                        let sp = &mut scratch.shards[lane.i];
                        let phase = if was_skipped {
                            sp.skip_ns += ns;
                            sp.windows_skipped += 1;
                            scratch.prof.skip_ns += ns;
                            HostPhase::Skip
                        } else {
                            sp.step_ns += ns;
                            sp.windows_stepped += 1;
                            scratch.prof.step_ns += ns;
                            HostPhase::Step
                        };
                        if sampled {
                            scratch.slices.push(HostSlice {
                                track: HostTrack::Shard(lane.i),
                                phase,
                                start_ns: ns_between(epoch, t0),
                                dur_ns: ns,
                            });
                        }
                    }
                }
                let t_route = epoch.map(|_| Instant::now());
                let (routed, n_envs) = route_window(produced, staging);
                if let (Some(epoch), Some(scratch), Some(tel), Some(t0)) =
                    (epoch, scratch.as_mut(), tel.as_mut(), t_route)
                {
                    let ns = ns_since(t0);
                    scratch.prof.route_ns += ns;
                    scratch.prof.windows += 1;
                    tel.windows += 1;
                    tel.envelopes_total += n_envs;
                    tel.envelope_bytes += n_envs * env_bytes;
                    if sampled {
                        tel.record_sampled(stepped_lanes, n, n_envs);
                        scratch.slices.push(HostSlice {
                            track: HostTrack::Worker(0),
                            phase: HostPhase::Route,
                            start_ns: ns_between(epoch, t0),
                            dur_ns: ns,
                        });
                    }
                }
                now = to;
                if skip && now < end {
                    // Whole-run fast-forward: if every shard, every
                    // undelivered message, and every just-routed envelope
                    // is beyond `now`, jump straight to the earliest of
                    // them instead of grinding out empty windows.
                    let t_skip = epoch.map(|_| Instant::now());
                    let mut h = routed;
                    for lane in &lanes {
                        h = h.min(lane_horizon(lane, now));
                    }
                    let mut jumped = false;
                    if h > now {
                        let jump = h.min(end);
                        for lane in &mut lanes {
                            lane.shard.skip_window(now, jump);
                        }
                        skipped += (jump - now) * n as u64;
                        now = jump;
                        jumped = true;
                    }
                    if let (Some(scratch), Some(tel), Some(t0)) =
                        (scratch.as_mut(), tel.as_mut(), t_skip)
                    {
                        scratch.prof.skip_ns += ns_since(t0);
                        if jumped {
                            tel.jumps += 1;
                        }
                    }
                }
            }
            if let (Some(p), Some(mut scratch), Some(tel), Some(t0)) = (prof, scratch, tel, t_busy)
            {
                scratch.prof.busy_ns = ns_since(t0);
                p.add_inline(scratch.prof.busy_ns, tel.windows);
                p.merge_scratch(scratch);
                p.merge_telemetry(&tel);
            }
        } else {
            let group_size = n.div_ceil(workers);
            let groups: Vec<&mut [Lane<'_, S>]> = lanes.chunks_mut(group_size).collect();
            let barrier = SpinBarrier::new(groups.len());
            // Cross-worker horizon exchange: each worker publishes the
            // minimum horizon of its lanes before the barrier; the serial
            // routing section folds in the routed envelopes' due-cycles
            // and publishes the agreed jump target for everyone.
            let horizon = AtomicU64::new(u64::MAX);
            let jump_to = AtomicU64::new(0);
            let stepped_total = AtomicU64::new(0);
            let skipped_total = AtomicU64::new(0);
            // Profiling-only shared state. Workers accumulate phase time
            // in thread-local scratches (merged after the scope); the
            // serial section owns the window telemetry. `first_arrival`
            // and `occupancy` carry each sampled window's barrier-arrival
            // minimum and stepped-lane count to the serial section.
            let first_arrival = AtomicU64::new(u64::MAX);
            let occupancy = AtomicUsize::new(0);
            let telemetry = Mutex::new(Telemetry::default());
            let scratches = Mutex::new(Vec::<WorkerScratch>::new());
            let t_path = epoch.map(|_| Instant::now());
            std::thread::scope(|scope| {
                for (w, group) in groups.into_iter().enumerate() {
                    let (barrier, horizon, jump_to) = (&barrier, &horizon, &jump_to);
                    let (stepped_total, skipped_total) = (&stepped_total, &skipped_total);
                    let (first_arrival, occupancy) = (&first_arrival, &occupancy);
                    let (telemetry, scratches) = (&telemetry, &scratches);
                    scope.spawn(move || {
                        let t_busy = epoch.map(|_| Instant::now());
                        let mut scratch = epoch.map(|_| WorkerScratch::new(w, n));
                        // Window ordinal, identical across workers (the
                        // barrier keeps them in lockstep), so every thread
                        // agrees on which windows are sampled.
                        let mut win = 0u64;
                        let (mut stepped, mut skipped) = (0u64, 0u64);
                        let mut now = start;
                        while now < end {
                            let to = (now + lookahead).min(end);
                            let sampled = epoch.is_some()
                                && (base_windows + win).is_multiple_of(sample_every);
                            let mut stepped_lanes = 0usize;
                            for lane in group.iter_mut() {
                                let t0 = epoch.map(|_| Instant::now());
                                let was_skipped =
                                    window_step(lane, now, to, staging, produced, skip, contract);
                                if was_skipped {
                                    skipped += to - now;
                                } else {
                                    stepped += to - now;
                                    stepped_lanes += 1;
                                }
                                if let (Some(epoch), Some(scratch), Some(t0)) =
                                    (epoch, scratch.as_mut(), t0)
                                {
                                    let ns = ns_since(t0);
                                    let sp = &mut scratch.shards[lane.i];
                                    let phase = if was_skipped {
                                        sp.skip_ns += ns;
                                        sp.windows_skipped += 1;
                                        scratch.prof.skip_ns += ns;
                                        HostPhase::Skip
                                    } else {
                                        sp.step_ns += ns;
                                        sp.windows_stepped += 1;
                                        scratch.prof.step_ns += ns;
                                        HostPhase::Step
                                    };
                                    if sampled {
                                        scratch.slices.push(HostSlice {
                                            track: HostTrack::Shard(lane.i),
                                            phase,
                                            start_ns: ns_between(epoch, t0),
                                            dur_ns: ns,
                                        });
                                    }
                                }
                            }
                            if skip {
                                let mut h = u64::MAX;
                                for lane in group.iter() {
                                    h = h.min(lane_horizon(lane, to));
                                }
                                horizon.fetch_min(h, MemOrder::AcqRel);
                            }
                            let t_arrive = epoch.map(|_| Instant::now());
                            if sampled {
                                if let (Some(epoch), Some(t0)) = (epoch, t_arrive) {
                                    occupancy.fetch_add(stepped_lanes, MemOrder::AcqRel);
                                    first_arrival
                                        .fetch_min(ns_between(epoch, t0), MemOrder::AcqRel);
                                }
                            }
                            let mut serial_ns = 0u64;
                            // Last group to finish routes the window's
                            // envelopes (and picks the jump target), then
                            // everyone proceeds.
                            barrier.wait_with(|| {
                                let t_serial = epoch.map(|_| Instant::now());
                                let (routed, n_envs) = route_window(produced, staging);
                                let mut jump = to;
                                if skip {
                                    let h = horizon.swap(u64::MAX, MemOrder::AcqRel).min(routed);
                                    jump = if h > to { h.min(end) } else { to };
                                    jump_to.store(jump, MemOrder::Relaxed);
                                }
                                if let (Some(epoch), Some(t0)) = (epoch, t_serial) {
                                    let mut tel = telemetry.lock().expect("prof telemetry lock");
                                    tel.windows += 1;
                                    tel.envelopes_total += n_envs;
                                    tel.envelope_bytes += n_envs * env_bytes;
                                    if jump > to {
                                        tel.jumps += 1;
                                    }
                                    if sampled {
                                        let occ = occupancy.swap(0, MemOrder::AcqRel);
                                        tel.record_sampled(occ, n, n_envs);
                                        // Barrier-arrival spread: this
                                        // thread arrived last, so its own
                                        // arrival minus the published
                                        // minimum spans all arrivers.
                                        let first = first_arrival.swap(u64::MAX, MemOrder::AcqRel);
                                        if let Some(me) = t_arrive {
                                            let me = ns_between(epoch, me);
                                            if first <= me {
                                                tel.spread.record((me - first) as f64);
                                            }
                                        }
                                    }
                                    serial_ns = ns_since(t0);
                                }
                            });
                            if let (Some(epoch), Some(scratch), Some(t0)) =
                                (epoch, scratch.as_mut(), t_arrive)
                            {
                                let total = ns_since(t0);
                                let wait = total.saturating_sub(serial_ns);
                                scratch.prof.barrier_ns += wait;
                                scratch.prof.route_ns += serial_ns;
                                scratch.prof.windows += 1;
                                if sampled {
                                    let start_ns = ns_between(epoch, t0);
                                    scratch.slices.push(HostSlice {
                                        track: HostTrack::Worker(w),
                                        phase: HostPhase::Barrier,
                                        start_ns,
                                        dur_ns: wait,
                                    });
                                    if serial_ns > 0 {
                                        scratch.slices.push(HostSlice {
                                            track: HostTrack::Worker(w),
                                            phase: HostPhase::Route,
                                            start_ns: start_ns + wait,
                                            dur_ns: serial_ns,
                                        });
                                    }
                                }
                            }
                            win += 1;
                            now = to;
                            if skip {
                                // The barrier release orders this load
                                // after the serial section's store.
                                let jump = jump_to.load(MemOrder::Relaxed);
                                if jump > now {
                                    let t0 = epoch.map(|_| Instant::now());
                                    for lane in group.iter_mut() {
                                        lane.shard.skip_window(now, jump);
                                        skipped += jump - now;
                                    }
                                    if let (Some(scratch), Some(t0)) = (scratch.as_mut(), t0) {
                                        scratch.prof.skip_ns += ns_since(t0);
                                    }
                                    now = jump;
                                }
                            }
                        }
                        stepped_total.fetch_add(stepped, MemOrder::Relaxed);
                        skipped_total.fetch_add(skipped, MemOrder::Relaxed);
                        if let (Some(mut s), Some(t0)) = (scratch, t_busy) {
                            s.prof.busy_ns = ns_since(t0);
                            scratches.lock().expect("prof scratch lock").push(s);
                        }
                    });
                }
            });
            stepped += stepped_total.load(MemOrder::Relaxed);
            skipped += skipped_total.load(MemOrder::Relaxed);
            if let Some(p) = prof {
                let tel = telemetry.into_inner().expect("prof telemetry lock");
                if let Some(t0) = t_path {
                    p.add_parallel(ns_since(t0), tel.windows);
                }
                let mut list = scratches.into_inner().expect("prof scratch lock");
                // Sort so the merge order (and thus any float folds
                // downstream) is independent of thread finish order.
                list.sort_by_key(|s| s.worker);
                for s in list {
                    p.merge_scratch(s);
                }
                p.merge_telemetry(&tel);
            }
        }
        // Anything routed in the final window still sits in staging:
        // deliver it so a later run (any worker count) sees it.
        drop(lanes);
        for (slot, inbox) in staging.iter().zip(inboxes.iter_mut()) {
            let mut slot = slot.lock().expect("staging lock");
            inbox.push_all(slot.drain(..));
        }
        self.stepped_cycles += stepped;
        self.skipped_cycles += skipped;
        self.now = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: each shard holds a counter; every cycle it adds what it
    /// receives and every `lookahead` cycles sends its parity to the next
    /// shard around a ring.
    struct RingShard {
        id: usize,
        n: usize,
        counter: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Shard for RingShard {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                while let Some(v) = inbox.pop_due(now) {
                    self.counter = self.counter.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.counter));
                }
            }
            outbox.send((self.id + 1) % self.n, to, self.counter % 97);
        }
    }

    fn make_ring(n: usize) -> Vec<RingShard> {
        (0..n)
            .map(|id| RingShard {
                id,
                n,
                counter: id as u64 + 1,
                log: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn every_worker_count_matches_sequential() {
        let mut seq = ParallelEngine::new(make_ring(8), 4);
        seq.run_sequential(1000);
        for workers in [2, 3, 5, 8, 64] {
            let mut par = ParallelEngine::new(make_ring(8), 4);
            par.run_windowed(1000, workers);
            for (p, s) in par.shards().iter().zip(seq.shards().iter()) {
                assert_eq!(p.counter, s.counter, "{workers} workers diverged");
                assert_eq!(p.log, s.log, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn messages_actually_flow() {
        let mut eng = ParallelEngine::new(make_ring(4), 2);
        eng.run_parallel(100);
        assert!(eng.shards().iter().all(|s| !s.log.is_empty()));
        assert_eq!(eng.now(), 100);
    }

    #[test]
    fn window_clamps_to_run_end() {
        let mut eng = ParallelEngine::new(make_ring(2), 64);
        eng.run_sequential(10);
        assert_eq!(eng.now(), 10);
    }

    #[test]
    fn single_cycle_windows_match_full_lookahead_windows() {
        // Absolute timestamps make the window length irrelevant to results
        // — for models that emit per simulated cycle (as the chip shards
        // do), not per window. Chop the same run into 1-cycle slices and
        // compare against full-lookahead windows.
        struct Pulse {
            id: usize,
            n: usize,
            acc: u64,
            log: Vec<(Cycle, u64)>,
        }
        impl Shard for Pulse {
            type Msg = u64;
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                inbox: &mut Inbox<u64>,
                outbox: &mut Outbox<u64>,
            ) {
                for now in from..to {
                    while let Some(v) = inbox.pop_due(now) {
                        self.acc = self.acc.wrapping_mul(31).wrapping_add(v);
                        self.log.push((now, self.acc));
                    }
                    if now % 3 == self.id as u64 % 3 {
                        outbox.send((self.id + 1) % self.n, now + 4, self.acc % 101);
                    }
                }
            }
        }
        let mk = |n: usize| {
            (0..n)
                .map(|id| Pulse {
                    id,
                    n,
                    acc: id as u64 + 1,
                    log: Vec::new(),
                })
                .collect::<Vec<_>>()
        };
        let mut whole = ParallelEngine::new(mk(6), 4);
        whole.run_sequential(400);
        let mut sliced = ParallelEngine::new(mk(6), 4);
        for _ in 0..400 {
            sliced.run_windowed(1, 1);
        }
        for (a, b) in whole.shards().iter().zip(sliced.shards().iter()) {
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.log, b.log);
        }
    }

    #[test]
    fn delivery_order_is_independent_of_arrival_order() {
        // Four same-cycle envelopes from different (source, sequence)
        // points; every arrival permutation must pop identically.
        let envs: Vec<Envelope<u64>> = vec![
            Envelope {
                at: 5,
                to: 0,
                from: 2,
                seq: 0,
                msg: 20,
            },
            Envelope {
                at: 5,
                to: 0,
                from: 0,
                seq: 1,
                msg: 1,
            },
            Envelope {
                at: 5,
                to: 0,
                from: 0,
                seq: 0,
                msg: 0,
            },
            Envelope {
                at: 3,
                to: 0,
                from: 7,
                seq: 9,
                msg: 79,
            },
        ];
        let expected = [79, 0, 1, 20]; // (at, from, seq) ascending
        fn permute(k: usize, arr: &mut Vec<Envelope<u64>>, out: &mut Vec<Vec<Envelope<u64>>>) {
            if k <= 1 {
                out.push(arr.clone());
                return;
            }
            for i in 0..k {
                permute(k - 1, arr, out);
                let swap = if k.is_multiple_of(2) { i } else { 0 };
                arr.swap(swap, k - 1);
            }
        }
        let mut perms = Vec::new();
        permute(envs.len(), &mut envs.clone(), &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            let mut inbox = Inbox::default();
            inbox.push_all(perm);
            let mut got = Vec::new();
            while let Some(m) = inbox.pop_due(10) {
                got.push(m);
            }
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn sequence_counters_persist_across_windows() {
        // Two separate windows emitting at the same future timestamp must
        // still have distinct, ordered sequence numbers.
        struct Burst {
            sender: bool,
            got: Vec<u64>,
        }
        impl Shard for Burst {
            type Msg = u64;
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                inbox: &mut Inbox<u64>,
                outbox: &mut Outbox<u64>,
            ) {
                for now in from..to {
                    while let Some(v) = inbox.pop_due(now) {
                        self.got.push(v);
                    }
                }
                if self.sender && from < 15 {
                    // The first three windows all land messages at t=20.
                    outbox.send(1, 20.max(to), from);
                }
            }
        }
        let mk = || {
            vec![
                Burst {
                    sender: true,
                    got: Vec::new(),
                },
                Burst {
                    sender: false,
                    got: Vec::new(),
                },
            ]
        };
        let mut seq = ParallelEngine::new(mk(), 5);
        seq.run_sequential(40);
        let mut par = ParallelEngine::new(mk(), 5);
        par.run_parallel(40);
        assert_eq!(seq.shards()[1].got, par.shards()[1].got);
        assert_eq!(seq.shards()[1].got, vec![0, 5, 10]);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn outbox_rejects_early_timestamps() {
        let mut outbox: Outbox<()> = Outbox::new(0, 10, 0, Vec::new());
        outbox.send(0, 9, ());
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_rejected() {
        let _ = ParallelEngine::new(make_ring(2), 0);
    }

    #[test]
    fn into_shards_returns_state() {
        let mut eng = ParallelEngine::new(make_ring(3), 1);
        eng.run_sequential(5);
        let shards = eng.into_shards();
        assert_eq!(shards.len(), 3);
    }

    /// Toy model with a real horizon: wakes every `period` cycles, pings
    /// the next shard (due two windows out), and tracks idle cycles the
    /// way the chip shards track stall/idle counters — so a horizon bug
    /// would show up as diverging state, not just timing.
    struct Sleeper {
        id: usize,
        n: usize,
        period: Cycle,
        idle_cycles: u64,
        acc: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Sleeper {
        fn awake_at(&self, now: Cycle) -> Cycle {
            now.next_multiple_of(self.period)
        }
    }

    impl Shard for Sleeper {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                let mut acted = false;
                while let Some(v) = inbox.pop_due(now) {
                    self.acc = self.acc.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.acc));
                    acted = true;
                }
                if now.is_multiple_of(self.period) {
                    outbox.send((self.id + 1) % self.n, now + 2 * self.period, self.acc % 89);
                    acted = true;
                }
                if !acted {
                    self.idle_cycles += 1;
                }
            }
        }

        fn next_event(&self, now: Cycle) -> Option<Cycle> {
            Some(self.awake_at(now))
        }

        fn skip_window(&mut self, from: Cycle, to: Cycle) {
            debug_assert!(self.awake_at(from) >= to, "skipped past a wakeup");
            self.idle_cycles += to - from;
        }
    }

    fn make_sleepers(n: usize, period: Cycle) -> Vec<Sleeper> {
        (0..n)
            .map(|id| Sleeper {
                id,
                n,
                period,
                idle_cycles: 0,
                acc: id as u64 + 7,
                log: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn skipping_is_bit_identical_and_actually_skips() {
        // Long sleep periods relative to the 2-cycle lookahead: the engine
        // should fast-forward most of the run yet reproduce the no-skip
        // states exactly, for every worker count.
        let mut base = ParallelEngine::new(make_sleepers(6, 64), 2);
        base.set_skip_enabled(false);
        base.run_sequential(5_000);
        assert_eq!(base.skipped_cycles(), 0);
        for workers in [1, 2, 6] {
            let mut eng = ParallelEngine::new(make_sleepers(6, 64), 2);
            eng.run_windowed(5_000, workers);
            assert!(
                eng.skipped_cycles() > eng.stepped_cycles(),
                "{workers} workers: skipped {} vs stepped {}",
                eng.skipped_cycles(),
                eng.stepped_cycles()
            );
            for (a, b) in eng.shards().iter().zip(base.shards().iter()) {
                assert_eq!(a.acc, b.acc, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
                assert_eq!(a.idle_cycles, b.idle_cycles, "{workers} workers diverged");
            }
            assert_eq!(eng.now(), base.now());
            assert_eq!(eng.pending_messages(), base.pending_messages());
        }
    }

    #[test]
    fn skip_counters_account_for_every_shard_cycle() {
        let mut eng = ParallelEngine::new(make_sleepers(4, 32), 2);
        eng.run_sequential(1_000);
        assert_eq!(eng.stepped_cycles() + eng.skipped_cycles(), 4 * 1_000);
        assert!(eng.skip_ratio() > 0.5);
        let mut off = ParallelEngine::new(make_sleepers(4, 32), 2);
        off.set_skip_enabled(false);
        off.run_sequential(1_000);
        assert_eq!(off.stepped_cycles(), 4 * 1_000);
        assert_eq!(off.skip_ratio(), 0.0);
    }

    #[test]
    fn default_horizon_never_skips() {
        // RingShard keeps the default `Some(now)` horizon, so skipping
        // stays inert even though it is enabled by default.
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        assert!(eng.skip_enabled());
        eng.run_sequential(200);
        assert_eq!(eng.skipped_cycles(), 0);
        assert_eq!(eng.stepped_cycles(), 4 * 200);
    }

    #[test]
    fn resumed_runs_still_skip_identically() {
        // Chop one run into many `run_windowed` calls (as the chip's
        // chunked is_done grid does) and compare against one long call.
        let mut whole = ParallelEngine::new(make_sleepers(5, 48), 2);
        whole.run_sequential(4_096);
        let mut chopped = ParallelEngine::new(make_sleepers(5, 48), 2);
        for _ in 0..4 {
            chopped.run_windowed(1_024, 2);
        }
        for (a, b) in whole.shards().iter().zip(chopped.shards().iter()) {
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.log, b.log);
            assert_eq!(a.idle_cycles, b.idle_cycles);
        }
    }

    #[test]
    fn profiling_is_bit_identical_and_accounts_every_nanosecond() {
        let mut base = ParallelEngine::new(make_sleepers(6, 64), 2);
        base.run_sequential(5_000);
        for workers in [1, 3, 6] {
            let mut eng = ParallelEngine::new(make_sleepers(6, 64), 2);
            eng.enable_profiling(ProfConfig::on());
            eng.run_windowed(5_000, workers);
            for (a, b) in eng.shards().iter().zip(base.shards().iter()) {
                assert_eq!(a.acc, b.acc, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
                assert_eq!(a.idle_cycles, b.idle_cycles, "{workers} workers diverged");
            }
            let report = eng.profile().expect("profiling enabled").report();
            // The named buckets are disjoint sub-intervals of each
            // worker's busy interval and `other` is the remainder, so the
            // partition is exact, not approximate.
            assert_eq!(report.phases().total(), report.total_ns());
            for w in &report.workers {
                assert_eq!(w.named_ns() + w.other_ns(), w.busy_ns);
            }
            let tel = &report.telemetry;
            assert!(tel.windows > 0, "{workers} workers saw no windows");
            assert_eq!(tel.sampled_windows, tel.windows); // sample_every = 1
            assert_eq!(tel.occupancy.iter().sum::<u64>(), tel.sampled_windows);
            // Every shard either steps or skips in every window boundary.
            for s in &report.shards {
                assert_eq!(s.windows_stepped + s.windows_skipped, tel.windows);
            }
            assert!(tel.envelopes_total > 0);
            assert!(tel.jumps > 0, "sleepers should trigger whole-run jumps");
            if workers > 1 {
                assert!(report.workers.len() > 1);
                assert!(tel.spread.count() > 0, "no barrier spread samples");
                assert!(report.parallel.windows == tel.windows);
            } else {
                assert_eq!(report.inline.windows, tel.windows);
            }
        }
    }

    #[test]
    fn disabled_profiling_reports_nothing() {
        let mut eng = ParallelEngine::new(make_sleepers(4, 32), 2);
        assert!(eng.profile().is_none());
        eng.enable_profiling(ProfConfig::off());
        eng.run_sequential(1_000);
        assert!(eng.profile().is_none());
    }

    #[test]
    fn sampling_stride_thins_histograms_not_totals() {
        let mut cfg = ProfConfig::on();
        cfg.sample_every = 8;
        let mut eng = ParallelEngine::new(make_ring(4), 2);
        eng.enable_profiling(cfg);
        eng.run_windowed(400, 2);
        let r = eng.profile().expect("profiling enabled").report();
        // 200 windows, every 8th sampled starting at 0 → 25 samples; the
        // phase totals still cover every window.
        assert_eq!(r.telemetry.windows, 200);
        assert_eq!(r.telemetry.sampled_windows, 25);
        assert!(r.phases().total() > 0);
        for w in &r.workers {
            assert_eq!(w.windows, 200);
        }
    }

    /// The satisfiable contract for `make_ring(n)` with a given lookahead:
    /// each shard only messages its ring successor, at exactly the window
    /// end (= window start + lookahead).
    fn ring_contract(n: usize, lookahead: u64) -> HorizonContract {
        let mut c = HorizonContract::unreachable(n);
        for id in 0..n {
            c.allow(id, (id + 1) % n, lookahead);
        }
        c.set_class_floors(vec![lookahead]);
        c
    }

    #[test]
    fn satisfied_contract_is_observation_only() {
        let mut plain = ParallelEngine::new(make_ring(6), 4);
        plain.run_sequential(500);
        for workers in [1, 3, 6] {
            let mut eng = ParallelEngine::new(make_ring(6), 4);
            eng.set_contract(ring_contract(6, 4), |_| 0);
            assert!(eng.contract().is_some());
            eng.run_windowed(500, workers);
            for (a, b) in eng.shards().iter().zip(plain.shards().iter()) {
                assert_eq!(a.counter, b.counter, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
            }
        }
        let mut cleared = ParallelEngine::new(make_ring(6), 4);
        cleared.set_contract(ring_contract(6, 4), |_| 0);
        cleared.clear_contract();
        assert!(cleared.contract().is_none());
        cleared.run_sequential(500);
        assert_eq!(cleared.shards()[0].counter, plain.shards()[0].counter);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "under-runs floor")]
    fn contract_floor_violation_panics_in_debug() {
        // RingShard emits at the window end (start + 4); a class floor of
        // 9 promises more delay than the model delivers.
        let mut c = ring_contract(4, 4);
        c.set_class_floors(vec![9]);
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        eng.set_contract(c, |_| 0);
        eng.run_sequential(8);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "must never message")]
    fn contract_unreachable_pair_panics_in_debug() {
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        eng.set_contract(HorizonContract::unreachable(4), |_| 0);
        eng.run_sequential(8);
    }

    #[test]
    #[should_panic(expected = "contract shard count mismatch")]
    fn contract_shard_count_is_checked() {
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        eng.set_contract(HorizonContract::unreachable(5), |_| 0);
    }

    #[test]
    fn pending_messages_counts_undelivered_envelopes() {
        let mut eng = ParallelEngine::new(make_ring(2), 8);
        assert_eq!(eng.pending_messages(), 0);
        eng.run_sequential(8);
        // Each shard sent one message due at cycle 8, not yet consumed.
        assert_eq!(eng.pending_messages(), 2);
        eng.run_sequential(8);
        assert_eq!(eng.pending_messages(), 2);
    }
}
