//! Conservative time-window parallel discrete-event execution (PDES).
//!
//! The paper's simulation platform (§4.2) is a parallel discrete-event
//! simulator: a framework layer handles synchronization, communication and
//! parallel acceleration, and function modules plug into it. This module is
//! that framework layer.
//!
//! The classic conservative scheme: partition the model into [`Shard`]s
//! whose only interaction is timestamped messages with a minimum delivery
//! latency (the *lookahead*, e.g. the router pipeline depth between a
//! sub-ring and the main ring). All shards can then safely advance
//! `lookahead` cycles in parallel without seeing each other's messages,
//! because anything a peer emits inside the window cannot become visible
//! until the next window. At each window boundary the engine routes the
//! emitted envelopes into the destination shards' inboxes.
//!
//! Determinism: every envelope carries its source shard and a per-source
//! sequence number, and inboxes deliver in `(timestamp, source, sequence)`
//! order — a total order fixed at emission time, independent of both host
//! thread interleaving and the order envelopes happen to arrive in. The
//! sequence counters live in the engine and persist across windows, so the
//! order is total across the whole run, not just within one window.
//! Results are therefore identical for any worker count, which
//! [`ParallelEngine::run_sequential`] exists to verify.
//!
//! A second property falls out of absolute timestamps: the window length
//! never affects results, only synchronization frequency. Any window no
//! longer than the lookahead is conservative, so running cycle-by-cycle
//! (`run_windowed(n, 1)` with a 1-cycle clamp at the end of a run) produces
//! the same states and messages as full-lookahead windows.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as MemOrder};
use std::sync::Mutex;

use crate::Cycle;

/// Timestamped message addressed to another shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Cycle at which the message becomes visible to the destination.
    pub at: Cycle,
    /// Destination shard index.
    pub to: usize,
    /// Source shard index (stamped by the [`Outbox`]).
    pub from: usize,
    /// Per-source emission sequence number (stamped by the [`Outbox`]).
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

/// Heap entry ordered min-first by `(at, from, seq)` — the deterministic
/// delivery order. The payload never participates in comparisons.
#[derive(Debug, Clone)]
struct Pending<M> {
    at: Cycle,
    from: usize,
    seq: u64,
    msg: M,
}

impl<M> Pending<M> {
    fn key(&self) -> (Cycle, usize, u64) {
        (self.at, self.from, self.seq)
    }
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Pending<M> {}

impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key().cmp(&self.key())
    }
}

/// Messages delivered to a shard, popped in `(timestamp, source shard,
/// sequence)` order — so same-cycle delivery is deterministic no matter in
/// which order the host threads happened to route the envelopes.
#[derive(Debug, Clone)]
pub struct Inbox<M> {
    heap: BinaryHeap<Pending<M>>,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> Inbox<M> {
    /// Pops the next message due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<M> {
        if self.heap.peek().is_some_and(|p| p.at <= now) {
            self.heap.pop().map(|p| p.msg)
        } else {
            None
        }
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn push(&mut self, env: Envelope<M>) {
        self.heap.push(Pending {
            at: env.at,
            from: env.from,
            seq: env.seq,
            msg: env.msg,
        });
    }
}

/// Collects messages a shard emits during a window, stamping each with the
/// source shard and a monotonically increasing sequence number.
#[derive(Debug)]
pub struct Outbox<M> {
    from: usize,
    window_end: Cycle,
    next_seq: u64,
    envelopes: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    fn new(from: usize, window_end: Cycle, next_seq: u64) -> Self {
        Self {
            from,
            window_end,
            next_seq,
            envelopes: Vec::new(),
        }
    }

    /// Sends `msg` to shard `to`, visible at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the end of the current window — that
    /// would violate the lookahead contract and make parallel execution
    /// diverge from sequential execution.
    pub fn send(&mut self, to: usize, at: Cycle, msg: M) {
        assert!(
            at >= self.window_end,
            "lookahead violation: message timestamped {at} inside window ending {}",
            self.window_end
        );
        self.envelopes.push(Envelope {
            at,
            to,
            from: self.from,
            seq: self.next_seq,
            msg,
        });
        self.next_seq += 1;
    }
}

/// A partition of the model that advances independently within a window.
pub trait Shard: Send {
    /// Message type exchanged between shards.
    type Msg: Send;

    /// Advances the shard through cycles `[from, to)`, consuming inbox
    /// messages as they come due and emitting cross-shard messages with
    /// timestamps `>= to` into `outbox`.
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
    );
}

/// One shard's per-window execution state: the shard itself, its inbox,
/// and its persistent sequence counter, keyed by shard index.
struct Lane<'a, S: Shard> {
    i: usize,
    shard: &'a mut S,
    inbox: &'a mut Inbox<S::Msg>,
    seq: &'a mut u64,
}

/// One shard's window: drain freshly routed envelopes into the inbox, run
/// the model, park the produced envelopes for the routing phase.
fn window_step<S: Shard>(
    lane: &mut Lane<'_, S>,
    from: Cycle,
    to: Cycle,
    staging: &[Mutex<Vec<Envelope<S::Msg>>>],
    produced: &[Mutex<Vec<Envelope<S::Msg>>>],
) {
    for env in staging[lane.i].lock().expect("staging lock").drain(..) {
        lane.inbox.push(env);
    }
    let mut outbox = Outbox::new(lane.i, to, *lane.seq);
    lane.shard.run_window(from, to, lane.inbox, &mut outbox);
    *lane.seq = outbox.next_seq;
    *produced[lane.i].lock().expect("produced lock") = outbox.envelopes;
}

/// Routing phase: move every produced envelope to its destination's staging
/// row. Envelope keys already fix the delivery order, so this only has to
/// be exhaustive, not ordered.
fn route_window<M>(produced: &[Mutex<Vec<Envelope<M>>>], staging: &[Mutex<Vec<Envelope<M>>>]) {
    let n = staging.len();
    for slot in produced {
        for env in slot.lock().expect("produced lock").drain(..) {
            assert!(env.to < n, "unknown shard {}", env.to);
            staging[env.to].lock().expect("staging lock").push(env);
        }
    }
}

/// Sense-reversing spin barrier. The chip synchronizes every `lookahead`
/// (typically 2) cycles — tens of thousands of window boundaries per run —
/// so parties spin instead of sleeping: a futex-based barrier's sleep/wake
/// round-trip costs more than an entire window of simulation. After a
/// bounded spin each check yields the CPU, so oversubscribed hosts (more
/// workers than cores) still make progress instead of burning whole
/// scheduler quanta. The last party to arrive runs a serial section (the
/// routing phase) before releasing the others.
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Spins this many times before each yield while waiting.
    const SPINS_PER_YIELD: u32 = 256;

    fn new(parties: usize) -> Self {
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all parties arrive; the last runs `serial` first.
    fn wait_with(&self, serial: impl FnOnce()) {
        let generation = self.generation.load(MemOrder::Acquire);
        if self.arrived.fetch_add(1, MemOrder::AcqRel) + 1 == self.parties {
            serial();
            // Reset before the release so parties freed by the new
            // generation start the next arrival count from zero.
            self.arrived.store(0, MemOrder::Relaxed);
            self.generation.store(generation + 1, MemOrder::Release);
        } else {
            let mut spins = 0;
            while self.generation.load(MemOrder::Acquire) == generation {
                spins += 1u32;
                if spins.is_multiple_of(Self::SPINS_PER_YIELD) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Drives a set of shards with conservative window synchronization.
#[derive(Debug)]
pub struct ParallelEngine<S: Shard> {
    shards: Vec<S>,
    inboxes: Vec<Inbox<S::Msg>>,
    seqs: Vec<u64>,
    lookahead: Cycle,
    now: Cycle,
}

impl<S: Shard> ParallelEngine<S> {
    /// Creates an engine over `shards` with the given `lookahead` (minimum
    /// cross-shard message latency, in cycles).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero.
    pub fn new(shards: Vec<S>, lookahead: Cycle) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead > 0, "lookahead must be positive");
        let inboxes = shards.iter().map(|_| Inbox::default()).collect();
        let seqs = vec![0; shards.len()];
        Self {
            shards,
            inboxes,
            seqs,
            lookahead,
            now: 0,
        }
    }

    /// Current simulation time (start of the next window).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared view of the shards (for collecting statistics).
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Exclusive view of the shards.
    pub fn shards_mut(&mut self) -> &mut [S] {
        &mut self.shards
    }

    /// Consumes the engine and returns its shards.
    pub fn into_shards(self) -> Vec<S> {
        self.shards
    }

    /// Cross-shard messages routed but not yet consumed by any shard.
    pub fn pending_messages(&self) -> usize {
        self.inboxes.iter().map(Inbox::len).sum()
    }

    /// Runs `cycles` further cycles with one persistent worker thread per
    /// shard; equivalent to [`run_windowed`](Self::run_windowed) with as
    /// many workers as shards.
    pub fn run_parallel(&mut self, cycles: Cycle) {
        self.run_windowed(cycles, self.shards.len());
    }

    /// Runs `cycles` further cycles on the calling thread with identical
    /// results; the single-worker degenerate case of
    /// [`run_windowed`](Self::run_windowed).
    pub fn run_sequential(&mut self, cycles: Cycle) {
        self.run_windowed(cycles, 1);
    }

    /// The windowing core: advances all shards by `cycles` using up to
    /// `workers` host threads (clamped to `1..=shards`). One worker runs
    /// inline on the calling thread with no synchronization; more workers
    /// split the shards into contiguous groups, synchronize at window
    /// boundaries with a barrier, and a single routing phase moves
    /// envelopes between windows. Results are bit-identical for every
    /// worker count.
    pub fn run_windowed(&mut self, cycles: Cycle, workers: usize) {
        let end = self.now + cycles;
        if self.now >= end {
            return;
        }
        let n = self.shards.len();
        let workers = workers.clamp(1, n);
        let lookahead = self.lookahead;
        let start = self.now;
        // Workers park each window's envelopes in `produced`; the routing
        // phase moves them to the destination's `staging` row, which the
        // owner drains into its inbox at the next window start.
        let produced: Vec<Mutex<Vec<Envelope<S::Msg>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let staging: Vec<Mutex<Vec<Envelope<S::Msg>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();

        let mut lanes: Vec<Lane<'_, S>> = self
            .shards
            .iter_mut()
            .zip(self.inboxes.iter_mut())
            .zip(self.seqs.iter_mut())
            .enumerate()
            .map(|(i, ((shard, inbox), seq))| Lane {
                i,
                shard,
                inbox,
                seq,
            })
            .collect();
        if workers == 1 {
            let mut now = start;
            while now < end {
                let to = (now + lookahead).min(end);
                for lane in &mut lanes {
                    window_step(lane, now, to, &staging, &produced);
                }
                route_window(&produced, &staging);
                now = to;
            }
        } else {
            let group_size = n.div_ceil(workers);
            let groups: Vec<&mut [Lane<'_, S>]> = lanes.chunks_mut(group_size).collect();
            let barrier = SpinBarrier::new(groups.len());
            std::thread::scope(|scope| {
                for group in groups {
                    let (produced, staging, barrier) = (&produced, &staging, &barrier);
                    scope.spawn(move || {
                        let mut now = start;
                        while now < end {
                            let to = (now + lookahead).min(end);
                            for lane in group.iter_mut() {
                                window_step(lane, now, to, staging, produced);
                            }
                            // Last group to finish routes the window's
                            // envelopes, then everyone proceeds.
                            barrier.wait_with(|| route_window(produced, staging));
                            now = to;
                        }
                    });
                }
            });
        }
        // Anything routed in the final window still sits in staging:
        // deliver it so a later run (any worker count) sees it.
        for (i, slot) in staging.into_iter().enumerate() {
            for env in slot.into_inner().expect("staging lock") {
                self.inboxes[i].push(env);
            }
        }
        self.now = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: each shard holds a counter; every cycle it adds what it
    /// receives and every `lookahead` cycles sends its parity to the next
    /// shard around a ring.
    struct RingShard {
        id: usize,
        n: usize,
        counter: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Shard for RingShard {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                while let Some(v) = inbox.pop_due(now) {
                    self.counter = self.counter.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.counter));
                }
            }
            outbox.send((self.id + 1) % self.n, to, self.counter % 97);
        }
    }

    fn make_ring(n: usize) -> Vec<RingShard> {
        (0..n)
            .map(|id| RingShard {
                id,
                n,
                counter: id as u64 + 1,
                log: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn every_worker_count_matches_sequential() {
        let mut seq = ParallelEngine::new(make_ring(8), 4);
        seq.run_sequential(1000);
        for workers in [2, 3, 5, 8, 64] {
            let mut par = ParallelEngine::new(make_ring(8), 4);
            par.run_windowed(1000, workers);
            for (p, s) in par.shards().iter().zip(seq.shards().iter()) {
                assert_eq!(p.counter, s.counter, "{workers} workers diverged");
                assert_eq!(p.log, s.log, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn messages_actually_flow() {
        let mut eng = ParallelEngine::new(make_ring(4), 2);
        eng.run_parallel(100);
        assert!(eng.shards().iter().all(|s| !s.log.is_empty()));
        assert_eq!(eng.now(), 100);
    }

    #[test]
    fn window_clamps_to_run_end() {
        let mut eng = ParallelEngine::new(make_ring(2), 64);
        eng.run_sequential(10);
        assert_eq!(eng.now(), 10);
    }

    #[test]
    fn single_cycle_windows_match_full_lookahead_windows() {
        // Absolute timestamps make the window length irrelevant to results
        // — for models that emit per simulated cycle (as the chip shards
        // do), not per window. Chop the same run into 1-cycle slices and
        // compare against full-lookahead windows.
        struct Pulse {
            id: usize,
            n: usize,
            acc: u64,
            log: Vec<(Cycle, u64)>,
        }
        impl Shard for Pulse {
            type Msg = u64;
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                inbox: &mut Inbox<u64>,
                outbox: &mut Outbox<u64>,
            ) {
                for now in from..to {
                    while let Some(v) = inbox.pop_due(now) {
                        self.acc = self.acc.wrapping_mul(31).wrapping_add(v);
                        self.log.push((now, self.acc));
                    }
                    if now % 3 == self.id as u64 % 3 {
                        outbox.send((self.id + 1) % self.n, now + 4, self.acc % 101);
                    }
                }
            }
        }
        let mk = |n: usize| {
            (0..n)
                .map(|id| Pulse {
                    id,
                    n,
                    acc: id as u64 + 1,
                    log: Vec::new(),
                })
                .collect::<Vec<_>>()
        };
        let mut whole = ParallelEngine::new(mk(6), 4);
        whole.run_sequential(400);
        let mut sliced = ParallelEngine::new(mk(6), 4);
        for _ in 0..400 {
            sliced.run_windowed(1, 1);
        }
        for (a, b) in whole.shards().iter().zip(sliced.shards().iter()) {
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.log, b.log);
        }
    }

    #[test]
    fn delivery_order_is_independent_of_arrival_order() {
        // Four same-cycle envelopes from different (source, sequence)
        // points; every arrival permutation must pop identically.
        let envs: Vec<Envelope<u64>> = vec![
            Envelope {
                at: 5,
                to: 0,
                from: 2,
                seq: 0,
                msg: 20,
            },
            Envelope {
                at: 5,
                to: 0,
                from: 0,
                seq: 1,
                msg: 1,
            },
            Envelope {
                at: 5,
                to: 0,
                from: 0,
                seq: 0,
                msg: 0,
            },
            Envelope {
                at: 3,
                to: 0,
                from: 7,
                seq: 9,
                msg: 79,
            },
        ];
        let expected = [79, 0, 1, 20]; // (at, from, seq) ascending
        fn permute(k: usize, arr: &mut Vec<Envelope<u64>>, out: &mut Vec<Vec<Envelope<u64>>>) {
            if k <= 1 {
                out.push(arr.clone());
                return;
            }
            for i in 0..k {
                permute(k - 1, arr, out);
                let swap = if k.is_multiple_of(2) { i } else { 0 };
                arr.swap(swap, k - 1);
            }
        }
        let mut perms = Vec::new();
        permute(envs.len(), &mut envs.clone(), &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            let mut inbox = Inbox::default();
            for env in perm {
                inbox.push(env);
            }
            let mut got = Vec::new();
            while let Some(m) = inbox.pop_due(10) {
                got.push(m);
            }
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn sequence_counters_persist_across_windows() {
        // Two separate windows emitting at the same future timestamp must
        // still have distinct, ordered sequence numbers.
        struct Burst {
            sender: bool,
            got: Vec<u64>,
        }
        impl Shard for Burst {
            type Msg = u64;
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                inbox: &mut Inbox<u64>,
                outbox: &mut Outbox<u64>,
            ) {
                for now in from..to {
                    while let Some(v) = inbox.pop_due(now) {
                        self.got.push(v);
                    }
                }
                if self.sender && from < 15 {
                    // The first three windows all land messages at t=20.
                    outbox.send(1, 20.max(to), from);
                }
            }
        }
        let mk = || {
            vec![
                Burst {
                    sender: true,
                    got: Vec::new(),
                },
                Burst {
                    sender: false,
                    got: Vec::new(),
                },
            ]
        };
        let mut seq = ParallelEngine::new(mk(), 5);
        seq.run_sequential(40);
        let mut par = ParallelEngine::new(mk(), 5);
        par.run_parallel(40);
        assert_eq!(seq.shards()[1].got, par.shards()[1].got);
        assert_eq!(seq.shards()[1].got, vec![0, 5, 10]);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn outbox_rejects_early_timestamps() {
        let mut outbox: Outbox<()> = Outbox::new(0, 10, 0);
        outbox.send(0, 9, ());
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_rejected() {
        let _ = ParallelEngine::new(make_ring(2), 0);
    }

    #[test]
    fn into_shards_returns_state() {
        let mut eng = ParallelEngine::new(make_ring(3), 1);
        eng.run_sequential(5);
        let shards = eng.into_shards();
        assert_eq!(shards.len(), 3);
    }

    #[test]
    fn pending_messages_counts_undelivered_envelopes() {
        let mut eng = ParallelEngine::new(make_ring(2), 8);
        assert_eq!(eng.pending_messages(), 0);
        eng.run_sequential(8);
        // Each shard sent one message due at cycle 8, not yet consumed.
        assert_eq!(eng.pending_messages(), 2);
        eng.run_sequential(8);
        assert_eq!(eng.pending_messages(), 2);
    }
}
