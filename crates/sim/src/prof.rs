//! Host-side self-profiling of the PDES engine itself.
//!
//! [`crate::obs`] measures the *simulated chip* (IPC, ring utilization,
//! memory latency); this module measures the *simulator*: where the host's
//! wall-clock goes while [`crate::parallel::ParallelEngine::run_windowed`]
//! drives the shards. It exists because the parallel path's pathologies
//! (ROADMAP item 1: 4 workers slower than 1 at a 2-cycle lookahead) can
//! only be attacked measurement-first.
//!
//! Accounting model:
//!
//! * **Phase buckets** ([`HostPhase`]) partition every worker's busy time:
//!   component stepping, cycle-skip bookkeeping, envelope routing, window
//!   barrier wait, observability flushing, and an `other` remainder
//!   computed as `busy − named` so the buckets always sum *exactly* to
//!   the measured total.
//! * **Barrier wait is accounted to the waiter.** A worker that reaches
//!   the window barrier early spends its own host cycles spinning; that
//!   cost belongs to the thread that paid it, not to the straggler that
//!   caused it. The serial routing section the last arriver runs is
//!   subtracted from its wait and charged to the route phase instead.
//! * **Window telemetry** — occupancy (how many shards actually stepped),
//!   skip ratios, envelope counts/bytes per boundary, barrier-arrival
//!   spread (first vs last arriver), and inline-vs-parallel path
//!   attribution.
//!
//! Determinism: profiling is read-only with respect to the simulation.
//! Every `Instant` read feeds only these host-side accumulators — never a
//! model decision — so a profiled run produces a bit-identical report to
//! an unprofiled one (enforced by `tests/profiling.rs`). Disabled
//! profiling costs one branch per site and reads no clocks at all.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use crate::stats::{Histogram, Percentiles};

/// Where a slice of host wall-clock went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Running `Shard::run_window` (component stepping) plus draining the
    /// window's staged envelopes into the shard's inbox.
    Step,
    /// Cycle-skip bookkeeping: `Shard::skip_window` fast-forwards and the
    /// horizon checks that prove a window event-free.
    Skip,
    /// Envelope routing/exchange at window boundaries (the serial section
    /// the barrier's last arriver runs, boundary bookkeeping included).
    Route,
    /// Spin/yield wait at the window barrier, net of any serial section
    /// the waiter itself ran.
    Barrier,
    /// Draining and flushing the observability layer (facade-side).
    Obs,
    /// Everything unnamed: loop control, horizon publication, profiling
    /// overhead. Computed as `busy − named`, never measured directly.
    Other,
}

/// Number of [`HostPhase`] variants.
pub const PHASES: usize = 6;

impl HostPhase {
    /// Every phase, in display order.
    pub const ALL: [HostPhase; PHASES] = [
        HostPhase::Step,
        HostPhase::Skip,
        HostPhase::Route,
        HostPhase::Barrier,
        HostPhase::Obs,
        HostPhase::Other,
    ];

    /// Stable snake_case name used in every export.
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::Step => "step",
            HostPhase::Skip => "skip",
            HostPhase::Route => "route",
            HostPhase::Barrier => "barrier_wait",
            HostPhase::Obs => "obs_flush",
            HostPhase::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            HostPhase::Step => 0,
            HostPhase::Skip => 1,
            HostPhase::Route => 2,
            HostPhase::Barrier => 3,
            HostPhase::Obs => 4,
            HostPhase::Other => 5,
        }
    }
}

impl fmt::Display for HostPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Nanoseconds per [`HostPhase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    ns: [u64; PHASES],
}

impl PhaseNanos {
    /// All-zero buckets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` to `phase`'s bucket.
    pub fn add(&mut self, phase: HostPhase, ns: u64) {
        self.ns[phase.index()] += ns;
    }

    /// Nanoseconds accumulated in `phase`.
    pub fn get(&self, phase: HostPhase) -> u64 {
        self.ns[phase.index()]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &PhaseNanos) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
    }
}

/// Self-profiling configuration, carried inside the chip config.
///
/// Default is fully off: the engine allocates nothing, reads no clocks,
/// and every instrumentation site reduces to one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Master switch.
    pub enabled: bool,
    /// Record the per-window telemetry (occupancy, envelope and spread
    /// histograms, timeline slices) on every `sample_every`-th window.
    /// Phase totals accumulate on every window regardless. Must be ≥ 1.
    pub sample_every: u64,
    /// Ring capacity for host timeline slices (Chrome-trace export keeps
    /// the most recent `slice_capacity`, counting what it dropped).
    pub slice_capacity: usize,
}

impl ProfConfig {
    /// Sampling strides above this leave the window histograms with so
    /// few samples they are statistically meaningless on any realistic
    /// run; `smarco-lint` flags such configurations (SL0416).
    pub const DEGENERATE_SAMPLE_EVERY: u64 = 4096;

    /// Fully disabled (the default).
    pub fn off() -> Self {
        Self {
            enabled: false,
            sample_every: 1,
            slice_capacity: 1 << 14,
        }
    }

    /// Enabled with every window sampled and the default slice capacity.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::off()
        }
    }
}

impl Default for ProfConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// One shard's wall-clock account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Nanoseconds spent stepping this shard through windows.
    pub step_ns: u64,
    /// Nanoseconds spent fast-forwarding this shard past windows.
    pub skip_ns: u64,
    /// Windows this shard was stepped through.
    pub windows_stepped: u64,
    /// Windows this shard skipped (within-window fast-forwards only;
    /// whole-run clock jumps are counted as [`ProfileReport::jumps`]).
    pub windows_skipped: u64,
}

impl ShardProfile {
    /// Total nanoseconds attributed to this shard.
    pub fn busy_ns(&self) -> u64 {
        self.step_ns + self.skip_ns
    }

    fn merge(&mut self, other: &ShardProfile) {
        self.step_ns += other.step_ns;
        self.skip_ns += other.skip_ns;
        self.windows_stepped += other.windows_stepped;
        self.windows_skipped += other.windows_skipped;
    }
}

/// One worker thread's wall-clock account. The named buckets are measured
/// as disjoint sub-intervals of the busy interval (monotonic clock), so
/// `other_ns` — the remainder — makes the buckets sum to `busy_ns`
/// exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Total nanoseconds this worker spent inside the window loop.
    pub busy_ns: u64,
    /// Nanoseconds stepping its shards.
    pub step_ns: u64,
    /// Nanoseconds fast-forwarding its shards.
    pub skip_ns: u64,
    /// Nanoseconds waiting at the window barrier (net of serial work).
    pub barrier_ns: u64,
    /// Nanoseconds routing envelopes (the serial section).
    pub route_ns: u64,
    /// Window boundaries this worker processed.
    pub windows: u64,
}

impl WorkerProfile {
    /// Sum of the measured (named) buckets.
    pub fn named_ns(&self) -> u64 {
        self.step_ns + self.skip_ns + self.barrier_ns + self.route_ns
    }

    /// Unattributed remainder: `busy − named` (saturating; the named
    /// buckets are sub-intervals of busy, so this only saturates if the
    /// host clock misbehaves).
    pub fn other_ns(&self) -> u64 {
        self.busy_ns.saturating_sub(self.named_ns())
    }

    fn merge(&mut self, other: &WorkerProfile) {
        self.busy_ns += other.busy_ns;
        self.step_ns += other.step_ns;
        self.skip_ns += other.skip_ns;
        self.barrier_ns += other.barrier_ns;
        self.route_ns += other.route_ns;
        self.windows += other.windows;
    }
}

/// Host-side timeline track a slice belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostTrack {
    /// Work attributed to a shard (stepping, skipping).
    Shard(usize),
    /// Work attributed to a worker thread (barrier, routing).
    Worker(usize),
}

/// One host wall-clock slice, for the Chrome-trace timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSlice {
    /// Which track the slice renders on.
    pub track: HostTrack,
    /// Which phase the time went to.
    pub phase: HostPhase,
    /// Nanoseconds since the profile epoch.
    pub start_ns: u64,
    /// Slice length in nanoseconds.
    pub dur_ns: u64,
}

/// Wall-clock and window count of one execution path (inline vs parallel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Wall-clock nanoseconds spent on this path (calling thread's view).
    pub ns: u64,
    /// Window boundaries processed on this path.
    pub windows: u64,
}

/// Per-worker scratch the parallel path accumulates lock-free and merges
/// after the thread scope ends. All counters are plain integers, so the
/// merge is order-independent.
#[derive(Debug)]
pub struct WorkerScratch {
    /// Worker (group) index.
    pub worker: usize,
    /// The worker's own account.
    pub prof: WorkerProfile,
    /// Per-shard accounts, indexed by global shard index (only this
    /// worker's lanes are non-zero).
    pub shards: Vec<ShardProfile>,
    /// Timeline slices recorded on sampled windows.
    pub slices: Vec<HostSlice>,
}

impl WorkerScratch {
    /// Empty scratch for worker `worker` over an `n`-shard engine.
    pub fn new(worker: usize, n: usize) -> Self {
        Self {
            worker,
            prof: WorkerProfile::default(),
            shards: vec![ShardProfile::default(); n],
            slices: Vec::new(),
        }
    }
}

/// Window-boundary telemetry accumulated by the serial (routing) section.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Window boundaries processed.
    pub windows: u64,
    /// Boundaries on which the histograms sampled.
    pub sampled_windows: u64,
    /// Whole-run fast-forwards (clock jumps past empty windows).
    pub jumps: u64,
    /// `occupancy[k]` = sampled windows in which exactly `k` shards
    /// stepped (the rest skipped). Doubles as the skip-ratio histogram:
    /// a window's skip ratio is `(shards − k) / shards`.
    pub occupancy: Vec<u64>,
    /// Routed envelopes per sampled window boundary.
    pub envelopes: Histogram,
    /// Envelopes routed across all windows (not just sampled ones).
    pub envelopes_total: u64,
    /// Bytes of envelope traffic across all windows
    /// (`count × size_of::<Envelope<Msg>>`).
    pub envelope_bytes: u64,
    /// Barrier-arrival spread per sampled window: nanoseconds between the
    /// first and last worker reaching the barrier (parallel path only).
    pub spread: Percentiles,
}

impl Telemetry {
    /// Records one sampled window's occupancy (`stepped` of `shards`
    /// shards ran) and routed envelope count.
    pub fn record_sampled(&mut self, stepped: usize, shards: usize, routed: u64) {
        self.sampled_windows += 1;
        if self.occupancy.len() <= shards {
            self.occupancy.resize(shards + 1, 0);
        }
        self.occupancy[stepped.min(shards)] += 1;
        self.envelopes.record(routed);
    }

    fn merge(&mut self, other: &Telemetry) {
        self.windows += other.windows;
        self.sampled_windows += other.sampled_windows;
        self.jumps += other.jumps;
        if self.occupancy.len() < other.occupancy.len() {
            self.occupancy.resize(other.occupancy.len(), 0);
        }
        for (a, b) in self.occupancy.iter_mut().zip(other.occupancy.iter()) {
            *a += b;
        }
        self.envelopes.merge(&other.envelopes);
        self.envelopes_total += other.envelopes_total;
        self.envelope_bytes += other.envelope_bytes;
        self.spread.merge(&other.spread);
    }
}

/// The engine-resident profile: accumulates across every `run_windowed`
/// call until snapshotted with [`report`](Self::report).
#[derive(Debug)]
pub struct EngineProfile {
    config: ProfConfig,
    epoch: Instant,
    shards: Vec<ShardProfile>,
    workers: Vec<WorkerProfile>,
    telemetry: Telemetry,
    slices: Vec<HostSlice>,
    slice_head: usize,
    dropped_slices: u64,
    inline: PathStats,
    parallel: PathStats,
}

impl EngineProfile {
    /// Fresh profile over an `n`-shard engine; the epoch (time zero of
    /// every slice timestamp) is now.
    pub fn new(config: ProfConfig, n: usize) -> Self {
        Self {
            config,
            epoch: Instant::now(),
            shards: vec![ShardProfile::default(); n],
            workers: Vec::new(),
            telemetry: Telemetry::default(),
            slices: Vec::new(),
            slice_head: 0,
            dropped_slices: 0,
            inline: PathStats::default(),
            parallel: PathStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ProfConfig {
        self.config
    }

    /// The profile's time zero (slice timestamps are relative to this).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds elapsed since the epoch.
    pub fn now_ns(&self) -> u64 {
        ns_of(self.epoch.elapsed())
    }

    /// Window-boundary telemetry recorded so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Window-boundary telemetry (mutable, for the inline path).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Worker `w`'s account, growing the table as needed.
    pub fn worker_mut(&mut self, w: usize) -> &mut WorkerProfile {
        if self.workers.len() <= w {
            self.workers.resize(w + 1, WorkerProfile::default());
        }
        &mut self.workers[w]
    }

    /// Shard `i`'s account.
    pub fn shard_mut(&mut self, i: usize) -> &mut ShardProfile {
        &mut self.shards[i]
    }

    /// Adds wall-clock and windows to the inline path's attribution.
    pub fn add_inline(&mut self, ns: u64, windows: u64) {
        self.inline.ns += ns;
        self.inline.windows += windows;
    }

    /// Adds wall-clock and windows to the parallel path's attribution.
    pub fn add_parallel(&mut self, ns: u64, windows: u64) {
        self.parallel.ns += ns;
        self.parallel.windows += windows;
    }

    /// Appends a timeline slice, evicting the oldest past capacity.
    pub fn push_slice(&mut self, slice: HostSlice) {
        if self.slices.len() < self.config.slice_capacity {
            self.slices.push(slice);
        } else if self.config.slice_capacity > 0 {
            self.slices[self.slice_head] = slice;
            self.slice_head = (self.slice_head + 1) % self.config.slice_capacity;
            self.dropped_slices += 1;
        }
    }

    /// Folds one worker's scratch into the profile. Integer sums only, so
    /// merge order never changes the result.
    pub fn merge_scratch(&mut self, scratch: WorkerScratch) {
        self.worker_mut(scratch.worker).merge(&scratch.prof);
        for (mine, theirs) in self.shards.iter_mut().zip(scratch.shards.iter()) {
            mine.merge(theirs);
        }
        for s in scratch.slices {
            self.push_slice(s);
        }
    }

    /// Folds a serial section's telemetry into the profile.
    pub fn merge_telemetry(&mut self, t: &Telemetry) {
        self.telemetry.merge(t);
    }

    /// Records one barrier-arrival spread sample (nanoseconds).
    pub fn record_spread(&mut self, ns: u64) {
        self.telemetry.spread.record(ns as f64);
    }

    /// Snapshots the profile into an exportable report. `obs_ns` starts
    /// at zero — the facade that owns the observability layer fills it.
    pub fn report(&self) -> ProfileReport {
        let mut slices: Vec<HostSlice> = {
            let (tail, head) = self.slices.split_at(self.slice_head);
            head.iter().chain(tail.iter()).copied().collect()
        };
        slices.sort_by_key(|s| s.start_ns);
        ProfileReport {
            sample_every: self.config.sample_every,
            shards: self.shards.clone(),
            shard_names: (0..self.shards.len())
                .map(|i| format!("shard{i}"))
                .collect(),
            workers: self.workers.clone(),
            telemetry: self.telemetry.clone(),
            inline: self.inline,
            parallel: self.parallel,
            slices,
            dropped_slices: self.dropped_slices,
            obs_ns: 0,
        }
    }
}

fn ns_of(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Snapshot of a run's host-side profile: per-shard and per-worker phase
/// buckets, window telemetry, and the sampled host timeline. Renders as
/// text ([`fmt::Display`]), hand-rolled JSON ([`to_json`](Self::to_json)),
/// folded stacks for `flamegraph.pl` ([`to_folded`](Self::to_folded)),
/// and Chrome `trace_event` JSON ([`to_chrome_json`](Self::to_chrome_json))
/// loadable in Perfetto next to the simulated-chip trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Telemetry sampling stride the run used.
    pub sample_every: u64,
    /// Per-shard accounts, shard-ordered.
    pub shards: Vec<ShardProfile>,
    /// Display name per shard (defaults to `shard{i}`; the chip facade
    /// substitutes `sub-ring{i}` / `hub`).
    pub shard_names: Vec<String>,
    /// Per-worker accounts (index = worker group).
    pub workers: Vec<WorkerProfile>,
    /// Window-boundary telemetry.
    pub telemetry: Telemetry,
    /// Inline (workers = 1) path attribution.
    pub inline: PathStats,
    /// Parallel path attribution.
    pub parallel: PathStats,
    /// Sampled host timeline, start-ordered.
    pub slices: Vec<HostSlice>,
    /// Slices evicted by the ring buffer.
    pub dropped_slices: u64,
    /// Nanoseconds the facade spent draining/flushing observability.
    pub obs_ns: u64,
}

impl ProfileReport {
    /// Aggregated phase buckets: every worker's named buckets plus their
    /// `other` remainders, plus the facade's obs time. By construction
    /// `phases().total() == total_ns()` exactly.
    pub fn phases(&self) -> PhaseNanos {
        let mut p = PhaseNanos::new();
        for w in &self.workers {
            p.add(HostPhase::Step, w.step_ns);
            p.add(HostPhase::Skip, w.skip_ns);
            p.add(HostPhase::Route, w.route_ns);
            p.add(HostPhase::Barrier, w.barrier_ns);
            p.add(HostPhase::Other, w.other_ns());
        }
        p.add(HostPhase::Obs, self.obs_ns);
        p
    }

    /// Total measured host nanoseconds: every worker's busy time plus the
    /// facade's obs time. (Busy time is summed across workers, so with
    /// `w` workers this can exceed wall-clock by up to `w×`.)
    pub fn total_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum::<u64>() + self.obs_ns
    }

    /// Skip-ratio histogram in deciles: `decile[d]` = sampled windows
    /// whose skip ratio rounded to `d/10`. Derived from the occupancy
    /// counts.
    pub fn skip_decile(&self) -> [u64; 11] {
        let mut out = [0u64; 11];
        let shards = self.shards.len().max(1);
        for (stepped, &n) in self.telemetry.occupancy.iter().enumerate() {
            let skipped = shards.saturating_sub(stepped);
            let d = (skipped * 10 + shards / 2) / shards;
            out[d.min(10)] += n;
        }
        out
    }

    /// Display name for shard `i`.
    fn shard_name(&self, i: usize) -> &str {
        self.shard_names.get(i).map_or("shard", String::as_str)
    }

    /// Hand-rolled JSON rendering (the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let p = self.phases();
        let _ = write!(
            out,
            "{{\"sample_every\":{},\"total_ns\":{},\"obs_ns\":{},\
             \"windows\":{},\"sampled_windows\":{},\"jumps\":{},\
             \"inline\":{{\"ns\":{},\"windows\":{}}},\
             \"parallel\":{{\"ns\":{},\"windows\":{}}}",
            self.sample_every,
            self.total_ns(),
            self.obs_ns,
            self.telemetry.windows,
            self.telemetry.sampled_windows,
            self.telemetry.jumps,
            self.inline.ns,
            self.inline.windows,
            self.parallel.ns,
            self.parallel.windows,
        );
        out.push_str(",\"phases\":{");
        for (i, ph) in HostPhase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", ph.name(), p.get(*ph));
        }
        out.push_str("},\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{i},\"busy_ns\":{},\"step_ns\":{},\"skip_ns\":{},\
                 \"barrier_ns\":{},\"route_ns\":{},\"other_ns\":{},\"windows\":{}}}",
                w.busy_ns,
                w.step_ns,
                w.skip_ns,
                w.barrier_ns,
                w.route_ns,
                w.other_ns(),
                w.windows,
            );
        }
        out.push_str("],\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{i},\"name\":\"{}\",\"step_ns\":{},\"skip_ns\":{},\
                 \"windows_stepped\":{},\"windows_skipped\":{}}}",
                self.shard_name(i),
                s.step_ns,
                s.skip_ns,
                s.windows_stepped,
                s.windows_skipped,
            );
        }
        out.push_str("],\"occupancy\":[");
        for (i, n) in self.telemetry.occupancy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("],\"skip_decile\":[");
        for (i, n) in self.skip_decile().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        let _ = write!(
            out,
            "],\"envelopes\":{{\"total\":{},\"bytes\":{},\"per_window_mean\":{:.3}}}",
            self.telemetry.envelopes_total,
            self.telemetry.envelope_bytes,
            self.telemetry.envelopes.mean(),
        );
        let sp = &self.telemetry.spread;
        let _ = write!(
            out,
            ",\"barrier_spread_ns\":{{\"samples\":{},\"p50\":{:.0},\"p90\":{:.0},\
             \"p99\":{:.0},\"p999\":{:.0},\"max\":{:.0}}},\"dropped_slices\":{}}}",
            sp.count(),
            sp.p50(),
            sp.p90(),
            sp.p99(),
            sp.p999(),
            sp.max(),
            self.dropped_slices,
        );
        out
    }

    /// Folded-stack rendering (`frame;frame count` lines, counts in
    /// nanoseconds) — pipe through `flamegraph.pl` for a host-time
    /// flamegraph of the run.
    pub fn to_folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            let name = self.shard_name(i);
            if s.step_ns > 0 {
                let _ = writeln!(out, "smarco-sim;{name};step {}", s.step_ns);
            }
            if s.skip_ns > 0 {
                let _ = writeln!(out, "smarco-sim;{name};skip {}", s.skip_ns);
            }
        }
        for (i, w) in self.workers.iter().enumerate() {
            if w.barrier_ns > 0 {
                let _ = writeln!(out, "smarco-sim;worker{i};barrier_wait {}", w.barrier_ns);
            }
            if w.route_ns > 0 {
                let _ = writeln!(out, "smarco-sim;worker{i};route {}", w.route_ns);
            }
            let other = w.other_ns();
            if other > 0 {
                let _ = writeln!(out, "smarco-sim;worker{i};other {other}");
            }
        }
        if self.obs_ns > 0 {
            let _ = writeln!(out, "smarco-sim;obs_flush {}", self.obs_ns);
        }
        out
    }

    /// Chrome `trace_event` JSON of the sampled host timeline: shard
    /// tracks under a `host-shards` process, worker tracks under
    /// `host-workers`. Timestamps are microseconds of host time since the
    /// profile epoch, so the file loads in Perfetto alongside the
    /// simulated-chip trace (whose "µs" are simulated cycles).
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        // Distinct pids from the simulated-chip trace's 1..=6.
        const SHARD_PID: u64 = 100;
        const WORKER_PID: u64 = 101;
        let mut out = String::with_capacity(64 * self.slices.len() + 512);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut meta = |out: &mut String, pid: u64, group: &str, tid: u64, name: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{group}\"}}}},\n\
                 {{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        };
        for i in 0..self.shards.len() {
            let name = format!("{} (host)", self.shard_name(i));
            meta(&mut out, SHARD_PID, "host-shards", i as u64, &name);
        }
        for i in 0..self.workers.len() {
            let name = format!("worker{i}");
            meta(&mut out, WORKER_PID, "host-workers", i as u64, &name);
        }
        for s in &self.slices {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let (pid, tid) = match s.track {
                HostTrack::Shard(i) => (SHARD_PID, i as u64),
                HostTrack::Worker(i) => (WORKER_PID, i as u64),
            };
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"host\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{},\"dur\":{}}}",
                s.phase.name(),
                s.start_ns / 1_000,
                (s.dur_ns / 1_000).max(1),
            );
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_slices\":{}}}}}\n",
            self.dropped_slices
        );
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Writes [`to_folded`](Self::to_folded) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_folded(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_folded())
    }

    /// Writes [`to_chrome_json`](Self::to_chrome_json) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_chrome_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_chrome_json())
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.phases();
        let total = self.total_ns().max(1);
        writeln!(
            f,
            "host profile: {:.3}s busy across {} worker(s), {} windows \
             ({} sampled, {} jumps)",
            self.total_ns() as f64 / 1e9,
            self.workers.len(),
            self.telemetry.windows,
            self.telemetry.sampled_windows,
            self.telemetry.jumps,
        )?;
        for ph in HostPhase::ALL {
            let ns = p.get(ph);
            writeln!(
                f,
                "  {:<12} {:>10.3}s  {:>5.1}%",
                ph.name(),
                ns as f64 / 1e9,
                ns as f64 * 100.0 / total as f64,
            )?;
        }
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "  {:<12} step {:>8.3}s ({} windows), skip {:>8.3}s ({} windows)",
                self.shard_name(i),
                s.step_ns as f64 / 1e9,
                s.windows_stepped,
                s.skip_ns as f64 / 1e9,
                s.windows_skipped,
            )?;
        }
        if self.telemetry.spread.count() > 0 {
            writeln!(
                f,
                "  barrier spread p50/p99/p99.9: {:.0}/{:.0}/{:.0} ns",
                self.telemetry.spread.p50(),
                self.telemetry.spread.p99(),
                self.telemetry.spread.p999(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut prof = EngineProfile::new(ProfConfig::on(), 2);
        let mut s0 = WorkerScratch::new(0, 2);
        s0.prof = WorkerProfile {
            busy_ns: 1_000,
            step_ns: 500,
            skip_ns: 100,
            barrier_ns: 200,
            route_ns: 100,
            windows: 4,
        };
        s0.shards[0] = ShardProfile {
            step_ns: 500,
            skip_ns: 100,
            windows_stepped: 3,
            windows_skipped: 1,
        };
        s0.slices.push(HostSlice {
            track: HostTrack::Shard(0),
            phase: HostPhase::Step,
            start_ns: 10,
            dur_ns: 500,
        });
        prof.merge_scratch(s0);
        let mut t = Telemetry {
            windows: 4,
            ..Default::default()
        };
        t.record_sampled(2, 2, 3);
        t.record_sampled(0, 2, 0);
        t.envelopes_total = 3;
        t.envelope_bytes = 96;
        prof.merge_telemetry(&t);
        prof.record_spread(150);
        prof.add_parallel(1_000, 4);
        let mut r = prof.report();
        r.obs_ns = 50;
        r
    }

    #[test]
    fn phase_buckets_sum_to_total_exactly() {
        let r = sample_report();
        assert_eq!(r.phases().total(), r.total_ns());
        assert_eq!(r.total_ns(), 1_050);
        let w = &r.workers[0];
        assert_eq!(w.other_ns(), 100); // 1000 - (500+100+200+100)
        assert_eq!(w.named_ns() + w.other_ns(), w.busy_ns);
    }

    #[test]
    fn occupancy_doubles_as_skip_histogram() {
        let r = sample_report();
        assert_eq!(r.telemetry.occupancy, vec![1, 0, 1]);
        let d = r.skip_decile();
        assert_eq!(d[0], 1); // fully occupied window: 0% skipped
        assert_eq!(d[10], 1); // fully skipped window
        assert_eq!(r.telemetry.sampled_windows, 2);
    }

    #[test]
    fn json_is_balanced_and_carries_buckets() {
        let r = sample_report();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"barrier_ns\":200"), "{j}");
        assert!(j.contains("\"obs_flush\":50"), "{j}");
        assert!(j.contains("\"envelopes\":{\"total\":3,\"bytes\":96"), "{j}");
    }

    #[test]
    fn folded_lines_end_in_counts() {
        let r = sample_report();
        let folded = r.to_folded();
        assert!(folded.contains("smarco-sim;shard0;step 500"), "{folded}");
        assert!(
            folded.contains("smarco-sim;worker0;barrier_wait 200"),
            "{folded}"
        );
        for line in folded.lines() {
            let count = line.rsplit(' ').next().unwrap();
            assert!(count.parse::<u64>().is_ok(), "bad folded line: {line}");
        }
    }

    #[test]
    fn chrome_json_shape_and_host_pids() {
        let r = sample_report();
        let j = r.to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.contains("\"name\":\"host-shards\""), "{j}");
        assert!(j.contains("\"name\":\"host-workers\""), "{j}");
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn slice_ring_drops_oldest() {
        let mut cfg = ProfConfig::on();
        cfg.slice_capacity = 2;
        let mut prof = EngineProfile::new(cfg, 1);
        for i in 0..5u64 {
            prof.push_slice(HostSlice {
                track: HostTrack::Worker(0),
                phase: HostPhase::Route,
                start_ns: i,
                dur_ns: 1,
            });
        }
        let r = prof.report();
        assert_eq!(r.dropped_slices, 3);
        let starts: Vec<u64> = r.slices.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![3, 4]);
    }

    #[test]
    fn config_default_is_off_and_cheap() {
        let c = ProfConfig::default();
        assert!(!c.enabled);
        assert_eq!(c, ProfConfig::off());
        assert!(ProfConfig::on().enabled);
        assert!(ProfConfig::on().sample_every <= ProfConfig::DEGENERATE_SAMPLE_EVERY);
    }

    #[test]
    fn phase_nanos_arithmetic() {
        let mut a = PhaseNanos::new();
        a.add(HostPhase::Step, 10);
        a.add(HostPhase::Obs, 5);
        let mut b = PhaseNanos::new();
        b.add(HostPhase::Step, 1);
        a.merge(&b);
        assert_eq!(a.get(HostPhase::Step), 11);
        assert_eq!(a.total(), 16);
        assert_eq!(HostPhase::ALL.len(), PHASES);
    }
}
