//! Explicit finite programs and their builder.

use crate::op::{Instr, Op, INSTR_BYTES};
use crate::stream::InstructionStream;

/// A finite instruction sequence laid out at a base address, optionally
/// repeated, terminated by an implicit [`Op::Exit`].
///
/// Programs model an *instruction segment*: a contiguous code region whose
/// footprint matters for I-cache behaviour and which sub-ring threads can
/// share via SPM prefetch (§3.1.2).
///
/// # Examples
///
/// ```
/// use smarco_isa::{Op, ProgramBuilder};
/// use smarco_isa::stream::InstructionStream;
///
/// let prog = ProgramBuilder::at(0x1000)
///     .op(Op::load(0x8000, 4))
///     .op(Op::compute())
///     .op(Op::store(0x8004, 4))
///     .repeat(2)
///     .build();
/// let mut stream = prog.stream();
/// let mut n = 0;
/// while let Some(instr) = stream.next_instr() {
///     n += 1;
///     assert!(instr.pc >= 0x1000);
///     if matches!(instr.op, Op::Exit) { break; }
/// }
/// assert_eq!(n, 3 * 2 + 1); // body twice, then Exit
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    base: u64,
    ops: Vec<Op>,
    iterations: u64,
}

impl Program {
    /// Base address of the instruction segment.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Segment length in bytes (body only).
    pub fn segment_bytes(&self) -> u64 {
        self.ops.len() as u64 * INSTR_BYTES
    }

    /// Number of body iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Total dynamic instruction count (body × iterations + final `Exit`).
    pub fn dynamic_len(&self) -> u64 {
        self.ops.len() as u64 * self.iterations + 1
    }

    /// Ops in the body.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Creates a playable stream over this program.
    pub fn stream(&self) -> ProgramStream<'_> {
        ProgramStream {
            program: self,
            idx: 0,
            iter: 0,
            done: false,
        }
    }

    /// Creates an owning playable stream (for threads that outlive the
    /// builder scope).
    pub fn into_stream(self) -> OwnedProgramStream {
        OwnedProgramStream {
            program: self,
            idx: 0,
            iter: 0,
            done: false,
        }
    }
}

/// Builder for [`Program`].
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    base: u64,
    ops: Vec<Op>,
    iterations: u64,
}

impl ProgramBuilder {
    /// Starts a program whose instruction segment begins at `base`.
    pub fn at(base: u64) -> Self {
        Self {
            base,
            ops: Vec::new(),
            iterations: 1,
        }
    }

    /// Appends one op to the body.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends `n` single-cycle compute ops.
    pub fn compute(mut self, n: usize) -> Self {
        self.ops.extend(std::iter::repeat_n(Op::compute(), n));
        self
    }

    /// Appends ops from an iterator.
    pub fn ops<I: IntoIterator<Item = Op>>(mut self, ops: I) -> Self {
        self.ops.extend(ops);
        self
    }

    /// Sets how many times the body executes (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn repeat(mut self, n: u64) -> Self {
        assert!(n > 0, "iteration count must be positive");
        self.iterations = n;
        self
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty.
    pub fn build(self) -> Program {
        assert!(!self.ops.is_empty(), "program body must not be empty");
        Program {
            base: self.base,
            ops: self.ops,
            iterations: self.iterations,
        }
    }
}

/// Borrowing stream over a [`Program`]; see [`Program::stream`].
#[derive(Debug, Clone)]
pub struct ProgramStream<'a> {
    program: &'a Program,
    idx: usize,
    iter: u64,
    done: bool,
}

/// Owning stream over a [`Program`]; see [`Program::into_stream`].
#[derive(Debug, Clone)]
pub struct OwnedProgramStream {
    program: Program,
    idx: usize,
    iter: u64,
    done: bool,
}

fn advance(program: &Program, idx: &mut usize, iter: &mut u64, done: &mut bool) -> Option<Instr> {
    if *done {
        return None;
    }
    if *iter >= program.iterations {
        *done = true;
        // Implicit Exit placed just past the body.
        let pc = program.base + program.segment_bytes();
        return Some(Instr { pc, op: Op::Exit });
    }
    let pc = program.base + *idx as u64 * INSTR_BYTES;
    let op = program.ops[*idx];
    *idx += 1;
    if *idx == program.ops.len() {
        *idx = 0;
        *iter += 1;
    }
    Some(Instr { pc, op })
}

impl InstructionStream for ProgramStream<'_> {
    fn next_instr(&mut self) -> Option<Instr> {
        advance(self.program, &mut self.idx, &mut self.iter, &mut self.done)
    }
    fn segment(&self) -> Option<(u64, u64)> {
        Some((self.program.base, self.program.segment_bytes()))
    }
}

impl InstructionStream for OwnedProgramStream {
    fn next_instr(&mut self) -> Option<Instr> {
        advance(&self.program, &mut self.idx, &mut self.iter, &mut self.done)
    }
    fn segment(&self) -> Option<(u64, u64)> {
        Some((self.program.base, self.program.segment_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Program {
        ProgramBuilder::at(0x100)
            .op(Op::load(0, 4))
            .compute(2)
            .op(Op::store(8, 4))
            .repeat(3)
            .build()
    }

    #[test]
    fn dynamic_length_counts_iterations_and_exit() {
        let p = simple();
        assert_eq!(p.dynamic_len(), 4 * 3 + 1);
        let mut s = p.stream();
        let mut n = 0;
        while s.next_instr().is_some() {
            n += 1;
        }
        assert_eq!(n, p.dynamic_len());
    }

    #[test]
    fn pcs_wrap_within_segment() {
        let p = simple();
        let mut s = p.stream();
        let pcs: Vec<u64> = std::iter::from_fn(|| s.next_instr())
            .map(|i| i.pc)
            .collect();
        assert_eq!(&pcs[0..4], &[0x100, 0x104, 0x108, 0x10c]);
        assert_eq!(&pcs[4..8], &[0x100, 0x104, 0x108, 0x10c]);
        assert_eq!(*pcs.last().unwrap(), 0x110); // Exit just past body
    }

    #[test]
    fn last_op_is_exit_then_stream_ends() {
        let p = ProgramBuilder::at(0).op(Op::compute()).build();
        let mut s = p.stream();
        assert_eq!(s.next_instr().unwrap().op, Op::compute());
        assert_eq!(s.next_instr().unwrap().op, Op::Exit);
        assert_eq!(s.next_instr(), None);
        assert_eq!(s.next_instr(), None);
    }

    #[test]
    fn segment_metadata() {
        let p = simple();
        let s = p.stream();
        assert_eq!(s.segment(), Some((0x100, 16)));
        assert_eq!(p.segment_bytes(), 16);
        assert_eq!(p.base(), 0x100);
        assert_eq!(p.iterations(), 3);
        assert_eq!(p.ops().len(), 4);
    }

    #[test]
    fn owned_stream_matches_borrowed() {
        let p = simple();
        let mut a = p.stream();
        let mut b = p.clone().into_stream();
        loop {
            let (x, y) = (a.next_instr(), b.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_body_rejected() {
        let _ = ProgramBuilder::at(0).build();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_iterations_rejected() {
        let _ = ProgramBuilder::at(0).op(Op::compute()).repeat(0);
    }
}
