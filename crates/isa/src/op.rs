//! Instruction and memory-reference types.

use std::fmt;

/// Real-time priority class of a memory request (§3.4, §3.5.2).
///
/// `Realtime` requests bypass the MACT and may use the direct datapath;
/// `Normal` requests are eligible for MACT batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Priority {
    /// Ordinary request: may be collected into the MACT.
    #[default]
    Normal,
    /// Hard-real-time request: bypasses the MACT, eligible for the direct
    /// datapath.
    Realtime,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Normal => f.write_str("normal"),
            Priority::Realtime => f.write_str("realtime"),
        }
    }
}

/// A memory reference: address, size in bytes, and request priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address in the unified address space (DRAM or SPM region).
    pub addr: u64,
    /// Access width in bytes (1–64).
    pub bytes: u8,
    /// Real-time priority class.
    pub priority: Priority,
}

impl MemRef {
    /// Creates a normal-priority reference.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64, or if `addr + bytes`
    /// overflows the 64-bit address space.
    pub fn new(addr: u64, bytes: u8) -> Self {
        assert!(
            (1..=64).contains(&bytes),
            "access width {bytes} out of range 1..=64"
        );
        assert!(
            addr.checked_add(u64::from(bytes)).is_some(),
            "memory reference {addr:#x}+{bytes} overflows the address space"
        );
        Self {
            addr,
            bytes,
            priority: Priority::Normal,
        }
    }

    /// Creates a real-time-priority reference.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64, or if `addr + bytes`
    /// overflows the 64-bit address space.
    pub fn realtime(addr: u64, bytes: u8) -> Self {
        let mut r = Self::new(addr, bytes);
        r.priority = Priority::Realtime;
        r
    }

    /// Exclusive end address of the reference.
    ///
    /// # Panics
    ///
    /// Panics (with a clear message, instead of wrapping silently) if the
    /// reference ends past `u64::MAX` — possible only for references built
    /// before construction-time validation, e.g. deserialized ones.
    pub fn end(&self) -> u64 {
        self.addr
            .checked_add(u64::from(self.bytes))
            .unwrap_or_else(|| {
                panic!(
                    "memory reference {:#x}+{} overflows the address space",
                    self.addr, self.bytes
                )
            })
    }

    /// The referenced byte range `[addr, end)`.
    pub fn range(&self) -> std::ops::Range<u64> {
        self.addr..self.end()
    }
}

/// One static memory effect of an op: a byte range read or written, used
/// by def-use analyses (e.g. the `smarco-lint` race and overlap passes).
///
/// DMA effects are distinguished from LSQ effects because a DMA transfer
/// is asynchronous: its write completes only at the next [`Op::Sync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Effect {
    /// First byte touched.
    pub start: u64,
    /// Exclusive end of the range.
    pub end: u64,
    /// Whether the range is written (else read).
    pub write: bool,
    /// Whether the effect is produced by an asynchronous DMA transfer.
    pub dma: bool,
}

impl Effect {
    /// Whether the effect's range overlaps `other`'s.
    pub fn overlaps(&self, other: &Effect) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// One abstract instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// ALU/FPU work occupying an issue slot; `latency` models multi-cycle
    /// operations (1 for simple integer ops).
    Compute {
        /// Execution latency in cycles (≥1).
        latency: u8,
    },
    /// Memory read.
    Load(MemRef),
    /// Memory write.
    Store(MemRef),
    /// Control transfer; a mispredicted branch costs a front-end refill on
    /// the in-order pipeline.
    Branch {
        /// Whether the core's predictor missed this branch.
        mispredicted: bool,
    },
    /// Scratchpad DMA copy (SPM↔SPM or SPM↔DRAM, §3.5.1); asynchronous,
    /// completion observed via `Sync`.
    Dma {
        /// Source byte address.
        src: u64,
        /// Destination byte address.
        dst: u64,
        /// Transfer length in bytes.
        bytes: u32,
    },
    /// Waits until the thread's outstanding DMA transfers complete.
    Sync,
    /// Terminates the thread.
    Exit,
}

impl Op {
    /// Convenience constructor for a single-cycle compute op.
    pub fn compute() -> Self {
        Op::Compute { latency: 1 }
    }

    /// Convenience constructor for a normal-priority load.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64.
    pub fn load(addr: u64, bytes: u8) -> Self {
        Op::Load(MemRef::new(addr, bytes))
    }

    /// Convenience constructor for a normal-priority store.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64.
    pub fn store(addr: u64, bytes: u8) -> Self {
        Op::Store(MemRef::new(addr, bytes))
    }

    /// The memory reference of a load/store, if this is one.
    pub fn mem_ref(&self) -> Option<MemRef> {
        match self {
            Op::Load(m) | Op::Store(m) => Some(*m),
            _ => None,
        }
    }

    /// Whether this op reads or writes memory via the LSQ.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_))
    }

    /// The op's static memory effects (def-use metadata): zero, one or two
    /// byte ranges read/written. A `Dma` op reads its source and writes its
    /// destination (both tagged `dma: true`); zero-length DMA transfers
    /// produce no effects.
    pub fn effects(&self) -> Vec<Effect> {
        match *self {
            Op::Load(m) => vec![Effect {
                start: m.addr,
                end: m.end(),
                write: false,
                dma: false,
            }],
            Op::Store(m) => vec![Effect {
                start: m.addr,
                end: m.end(),
                write: true,
                dma: false,
            }],
            Op::Dma { src, dst, bytes } if bytes > 0 => vec![
                Effect {
                    start: src,
                    end: src.saturating_add(u64::from(bytes)),
                    write: false,
                    dma: true,
                },
                Effect {
                    start: dst,
                    end: dst.saturating_add(u64::from(bytes)),
                    write: true,
                    dma: true,
                },
            ],
            _ => Vec::new(),
        }
    }

    /// Whether this op orders the thread after its outstanding DMA
    /// transfers (the only barrier-like op in the ISA).
    pub fn is_dma_barrier(&self) -> bool {
        matches!(self, Op::Sync)
    }
}

/// An instruction paired with its program counter (used for I-cache and
/// shared-instruction-segment modelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Byte address of the instruction (4-byte fixed encoding).
    pub pc: u64,
    /// The operation.
    pub op: Op,
}

/// Fixed instruction encoding width in bytes.
pub const INSTR_BYTES: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ref_end() {
        let r = MemRef::new(100, 8);
        assert_eq!(r.end(), 108);
        assert_eq!(r.priority, Priority::Normal);
    }

    #[test]
    fn realtime_ref_priority() {
        assert_eq!(MemRef::realtime(0, 4).priority, Priority::Realtime);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        MemRef::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_width_rejected() {
        MemRef::new(0, 65);
    }

    #[test]
    fn op_classification() {
        assert!(Op::load(0, 4).is_mem());
        assert!(Op::store(0, 4).is_mem());
        assert!(!Op::compute().is_mem());
        assert!(!Op::Branch {
            mispredicted: false
        }
        .is_mem());
        assert_eq!(Op::load(16, 2).mem_ref(), Some(MemRef::new(16, 2)));
        assert_eq!(Op::compute().mem_ref(), None);
    }

    #[test]
    #[should_panic(expected = "overflows the address space")]
    fn overflowing_ref_rejected_at_construction() {
        MemRef::new(u64::MAX - 3, 8);
    }

    #[test]
    fn ref_at_top_of_address_space_is_valid() {
        let r = MemRef::new(u64::MAX - 8, 8);
        assert_eq!(r.end(), u64::MAX);
        assert_eq!(r.range(), u64::MAX - 8..u64::MAX);
    }

    #[test]
    fn effects_capture_def_use() {
        assert_eq!(
            Op::load(0x100, 4).effects(),
            vec![Effect {
                start: 0x100,
                end: 0x104,
                write: false,
                dma: false
            }]
        );
        assert_eq!(
            Op::store(0x200, 8).effects(),
            vec![Effect {
                start: 0x200,
                end: 0x208,
                write: true,
                dma: false
            }]
        );
        let dma = Op::Dma {
            src: 0x1000,
            dst: 0x2000,
            bytes: 64,
        };
        let eff = dma.effects();
        assert_eq!(eff.len(), 2);
        assert!(!eff[0].write && eff[0].dma);
        assert!(eff[1].write && eff[1].dma);
        assert_eq!(eff[1].start..eff[1].end, 0x2000..0x2040);
        assert!(Op::compute().effects().is_empty());
        assert!(Op::Dma {
            src: 0,
            dst: 64,
            bytes: 0
        }
        .effects()
        .is_empty());
    }

    #[test]
    fn effect_overlap_is_strict_range_intersection() {
        let w = |start, end| Effect {
            start,
            end,
            write: true,
            dma: false,
        };
        assert!(w(0, 8).overlaps(&w(4, 12)));
        assert!(!w(0, 8).overlaps(&w(8, 16)), "adjacent ranges are disjoint");
    }

    #[test]
    fn sync_is_the_dma_barrier() {
        assert!(Op::Sync.is_dma_barrier());
        assert!(!Op::compute().is_dma_barrier());
        assert!(!Op::Exit.is_dma_barrier());
    }

    #[test]
    fn priority_display_and_order() {
        assert_eq!(Priority::Normal.to_string(), "normal");
        assert_eq!(Priority::Realtime.to_string(), "realtime");
        assert!(Priority::Normal < Priority::Realtime);
    }
}
