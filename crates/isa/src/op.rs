//! Instruction and memory-reference types.

use std::fmt;

/// Real-time priority class of a memory request (§3.4, §3.5.2).
///
/// `Realtime` requests bypass the MACT and may use the direct datapath;
/// `Normal` requests are eligible for MACT batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Priority {
    /// Ordinary request: may be collected into the MACT.
    #[default]
    Normal,
    /// Hard-real-time request: bypasses the MACT, eligible for the direct
    /// datapath.
    Realtime,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Normal => f.write_str("normal"),
            Priority::Realtime => f.write_str("realtime"),
        }
    }
}

/// A memory reference: address, size in bytes, and request priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address in the unified address space (DRAM or SPM region).
    pub addr: u64,
    /// Access width in bytes (1–64).
    pub bytes: u8,
    /// Real-time priority class.
    pub priority: Priority,
}

impl MemRef {
    /// Creates a normal-priority reference.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64.
    pub fn new(addr: u64, bytes: u8) -> Self {
        assert!(
            (1..=64).contains(&bytes),
            "access width {bytes} out of range 1..=64"
        );
        Self {
            addr,
            bytes,
            priority: Priority::Normal,
        }
    }

    /// Creates a real-time-priority reference.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64.
    pub fn realtime(addr: u64, bytes: u8) -> Self {
        let mut r = Self::new(addr, bytes);
        r.priority = Priority::Realtime;
        r
    }

    /// Exclusive end address of the reference.
    pub fn end(&self) -> u64 {
        self.addr + u64::from(self.bytes)
    }
}

/// One abstract instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// ALU/FPU work occupying an issue slot; `latency` models multi-cycle
    /// operations (1 for simple integer ops).
    Compute {
        /// Execution latency in cycles (≥1).
        latency: u8,
    },
    /// Memory read.
    Load(MemRef),
    /// Memory write.
    Store(MemRef),
    /// Control transfer; a mispredicted branch costs a front-end refill on
    /// the in-order pipeline.
    Branch {
        /// Whether the core's predictor missed this branch.
        mispredicted: bool,
    },
    /// Scratchpad DMA copy (SPM↔SPM or SPM↔DRAM, §3.5.1); asynchronous,
    /// completion observed via `Sync`.
    Dma {
        /// Source byte address.
        src: u64,
        /// Destination byte address.
        dst: u64,
        /// Transfer length in bytes.
        bytes: u32,
    },
    /// Waits until the thread's outstanding DMA transfers complete.
    Sync,
    /// Terminates the thread.
    Exit,
}

impl Op {
    /// Convenience constructor for a single-cycle compute op.
    pub fn compute() -> Self {
        Op::Compute { latency: 1 }
    }

    /// Convenience constructor for a normal-priority load.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64.
    pub fn load(addr: u64, bytes: u8) -> Self {
        Op::Load(MemRef::new(addr, bytes))
    }

    /// Convenience constructor for a normal-priority store.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 64.
    pub fn store(addr: u64, bytes: u8) -> Self {
        Op::Store(MemRef::new(addr, bytes))
    }

    /// The memory reference of a load/store, if this is one.
    pub fn mem_ref(&self) -> Option<MemRef> {
        match self {
            Op::Load(m) | Op::Store(m) => Some(*m),
            _ => None,
        }
    }

    /// Whether this op reads or writes memory via the LSQ.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_))
    }
}

/// An instruction paired with its program counter (used for I-cache and
/// shared-instruction-segment modelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Byte address of the instruction (4-byte fixed encoding).
    pub pc: u64,
    /// The operation.
    pub op: Op,
}

/// Fixed instruction encoding width in bytes.
pub const INSTR_BYTES: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ref_end() {
        let r = MemRef::new(100, 8);
        assert_eq!(r.end(), 108);
        assert_eq!(r.priority, Priority::Normal);
    }

    #[test]
    fn realtime_ref_priority() {
        assert_eq!(MemRef::realtime(0, 4).priority, Priority::Realtime);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        MemRef::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_width_rejected() {
        MemRef::new(0, 65);
    }

    #[test]
    fn op_classification() {
        assert!(Op::load(0, 4).is_mem());
        assert!(Op::store(0, 4).is_mem());
        assert!(!Op::compute().is_mem());
        assert!(!Op::Branch {
            mispredicted: false
        }
        .is_mem());
        assert_eq!(Op::load(16, 2).mem_ref(), Some(MemRef::new(16, 2)));
        assert_eq!(Op::compute().mem_ref(), None);
    }

    #[test]
    fn priority_display_and_order() {
        assert_eq!(Priority::Normal.to_string(), "normal");
        assert_eq!(Priority::Realtime.to_string(), "realtime");
        assert!(Priority::Normal < Priority::Realtime);
    }
}
