//! Instruction-trace recording and replay.
//!
//! Architecture studies often want to run the *same* dynamic instruction
//! sequence through several machine configurations (e.g. the MACT
//! threshold sweep) so that differences come from the hardware, not the
//! workload. [`Trace::record`] captures any stream; [`Trace::replay`]
//! plays it back as many times as needed.

use crate::op::Instr;
use crate::stream::InstructionStream;

/// A recorded dynamic instruction sequence.
///
/// # Examples
///
/// ```
/// use smarco_isa::trace::Trace;
/// use smarco_isa::mix::compute_only;
/// use smarco_isa::InstructionStream;
///
/// let trace = Trace::record(compute_only(10));
/// assert_eq!(trace.len(), 11); // 10 computes + Exit
/// let mut a = trace.replay();
/// let mut b = trace.replay();
/// while let (Some(x), Some(y)) = (a.next_instr(), b.next_instr()) {
///     assert_eq!(x, y);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    instrs: Vec<Instr>,
    segment: Option<(u64, u64)>,
}

impl Trace {
    /// Drains `stream` to completion, capturing every instruction.
    ///
    /// Beware of unbounded streams: recording stops only when the stream
    /// ends.
    pub fn record<S: InstructionStream>(mut stream: S) -> Self {
        let segment = stream.segment();
        let mut instrs = Vec::new();
        while let Some(i) = stream.next_instr() {
            instrs.push(i);
        }
        Self { instrs, segment }
    }

    /// Records at most `limit` instructions (for unbounded streams).
    pub fn record_bounded<S: InstructionStream>(mut stream: S, limit: usize) -> Self {
        let segment = stream.segment();
        let mut instrs = Vec::with_capacity(limit.min(1 << 20));
        while instrs.len() < limit {
            match stream.next_instr() {
                Some(i) => instrs.push(i),
                None => break,
            }
        }
        Self { instrs, segment }
    }

    /// Dynamic instruction count.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The recorded instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// A replayable stream over the trace (cheap; the trace is shared).
    pub fn replay(&self) -> Replay<'_> {
        Replay { trace: self, at: 0 }
    }

    /// An owning replay stream (for threads that outlive the trace
    /// binding). Clones the underlying trace storage.
    pub fn into_replay(self) -> OwnedReplay {
        OwnedReplay { trace: self, at: 0 }
    }
}

impl FromIterator<Instr> for Trace {
    fn from_iter<I: IntoIterator<Item = Instr>>(iter: I) -> Self {
        Self {
            instrs: iter.into_iter().collect(),
            segment: None,
        }
    }
}

/// Borrowing replay stream; see [`Trace::replay`].
#[derive(Debug, Clone)]
pub struct Replay<'a> {
    trace: &'a Trace,
    at: usize,
}

impl InstructionStream for Replay<'_> {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.trace.instrs.get(self.at).copied();
        if i.is_some() {
            self.at += 1;
        }
        i
    }
    fn segment(&self) -> Option<(u64, u64)> {
        self.trace.segment
    }
}

/// Owning replay stream; see [`Trace::into_replay`].
#[derive(Debug, Clone)]
pub struct OwnedReplay {
    trace: Trace,
    at: usize,
}

impl InstructionStream for OwnedReplay {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.trace.instrs.get(self.at).copied();
        if i.is_some() {
            self.at += 1;
        }
        i
    }
    fn segment(&self) -> Option<(u64, u64)> {
        self.trace.segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{compute_only, AddressModel, GranularityMix, OpMix, SyntheticStream};
    use crate::op::Op;
    use smarco_sim::rng::SimRng;

    fn mix() -> OpMix {
        OpMix {
            mem_frac: 0.4,
            load_frac: 0.7,
            branch_frac: 0.1,
            branch_miss: 0.05,
            realtime_frac: 0.0,
            granularity: GranularityMix::uniform(),
            addresses: AddressModel::random(0x1000, 1 << 16),
        }
    }

    #[test]
    fn records_full_stream_including_exit() {
        let t = Trace::record(compute_only(5));
        assert_eq!(t.len(), 6);
        assert_eq!(t.instrs().last().unwrap().op, Op::Exit);
        assert!(!t.is_empty());
    }

    #[test]
    fn replay_is_identical_and_repeatable() {
        let t = Trace::record(SyntheticStream::new(mix(), 500, SimRng::new(1)));
        let a: Vec<_> = std::iter::from_fn({
            let mut r = t.replay();
            move || r.next_instr()
        })
        .collect();
        let b: Vec<_> = std::iter::from_fn({
            let mut r = t.replay();
            move || r.next_instr()
        })
        .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 501);
    }

    #[test]
    fn replay_preserves_segment() {
        let t = Trace::record(compute_only(3));
        assert_eq!(t.replay().segment(), Some((0, 1024)));
    }

    #[test]
    fn bounded_recording_truncates() {
        let t = Trace::record_bounded(SyntheticStream::new(mix(), 10_000, SimRng::new(2)), 100);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn owned_replay_matches_borrowed() {
        let t = Trace::record(compute_only(20));
        let mut a = t.replay();
        let mut b = t.clone().into_replay();
        loop {
            let (x, y) = (a.next_instr(), b.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = Trace::record(compute_only(2))
            .instrs()
            .iter()
            .copied()
            .collect();
        assert_eq!(t.len(), 3);
    }
}
