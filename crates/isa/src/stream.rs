//! The instruction-stream abstraction consumed by core pipelines.

use crate::op::Instr;

/// A source of instructions for one thread.
///
/// Streams end by returning `None` after (usually) emitting an
/// [`crate::Op::Exit`]; pipelines treat both as thread termination.
pub trait InstructionStream {
    /// Produces the next instruction, or `None` when the thread is done.
    fn next_instr(&mut self) -> Option<Instr>;

    /// `(base, bytes)` of the thread's instruction segment when known.
    ///
    /// Used for the shared-instruction-segment optimization (§3.1.2): when
    /// co-resident threads report the same segment, the core DMA-prefetches
    /// it into SPM and instruction fetch always hits.
    fn segment(&self) -> Option<(u64, u64)> {
        None
    }
}

impl<S: InstructionStream + ?Sized> InstructionStream for Box<S> {
    fn next_instr(&mut self) -> Option<Instr> {
        (**self).next_instr()
    }
    fn segment(&self) -> Option<(u64, u64)> {
        (**self).segment()
    }
}

/// A stream backed by a closure; the workhorse for structured benchmark
/// generators in `smarco-workloads`.
///
/// # Examples
///
/// ```
/// use smarco_isa::stream::{FnStream, InstructionStream};
/// use smarco_isa::{Instr, Op};
///
/// let mut remaining = 3u32;
/// let mut s = FnStream::new(move || {
///     if remaining == 0 {
///         None
///     } else {
///         remaining -= 1;
///         Some(Op::compute())
///     }
/// });
/// let mut count = 0;
/// while let Some(Instr { op, .. }) = s.next_instr() {
///     count += 1;
///     if matches!(op, Op::Exit) { break; }
/// }
/// assert_eq!(count, 4); // 3 computes + implicit Exit
/// ```
pub struct FnStream<F> {
    f: F,
    pc: u64,
    segment: Option<(u64, u64)>,
    exited: bool,
}

impl<F> std::fmt::Debug for FnStream<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnStream")
            .field("pc", &self.pc)
            .field("segment", &self.segment)
            .field("exited", &self.exited)
            .finish()
    }
}

impl<F: FnMut() -> Option<crate::op::Op>> FnStream<F> {
    /// Wraps `f`; PCs are assigned sequentially from 0 (wrapping within the
    /// declared segment when one is set).
    pub fn new(f: F) -> Self {
        Self {
            f,
            pc: 0,
            segment: None,
            exited: false,
        }
    }

    /// Declares the instruction segment `(base, bytes)`; PCs then start at
    /// `base` and wrap within it, modelling loop-dominated kernels.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of the instruction size.
    pub fn with_segment(mut self, base: u64, bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(crate::op::INSTR_BYTES),
            "bad segment length {bytes}"
        );
        self.segment = Some((base, bytes));
        self.pc = base;
        self
    }
}

impl<F: FnMut() -> Option<crate::op::Op>> InstructionStream for FnStream<F> {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.exited {
            return None;
        }
        let op = match (self.f)() {
            Some(op) => op,
            None => {
                self.exited = true;
                crate::op::Op::Exit
            }
        };
        if matches!(op, crate::op::Op::Exit) {
            self.exited = true;
        }
        let pc = self.pc;
        self.pc += crate::op::INSTR_BYTES;
        if let Some((base, bytes)) = self.segment {
            if self.pc >= base + bytes {
                self.pc = base;
            }
        }
        Some(Instr { pc, op })
    }

    fn segment(&self) -> Option<(u64, u64)> {
        self.segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn fn_stream_appends_exit_once() {
        let mut n = 2;
        let mut s = FnStream::new(move || {
            if n == 0 {
                None
            } else {
                n -= 1;
                Some(Op::compute())
            }
        });
        assert_eq!(s.next_instr().unwrap().op, Op::compute());
        assert_eq!(s.next_instr().unwrap().op, Op::compute());
        assert_eq!(s.next_instr().unwrap().op, Op::Exit);
        assert_eq!(s.next_instr(), None);
    }

    #[test]
    fn explicit_exit_ends_stream() {
        let mut sent = false;
        let mut s = FnStream::new(move || {
            if sent {
                Some(Op::compute())
            } else {
                sent = true;
                Some(Op::Exit)
            }
        });
        assert_eq!(s.next_instr().unwrap().op, Op::Exit);
        assert_eq!(s.next_instr(), None);
    }

    #[test]
    fn pcs_wrap_in_declared_segment() {
        let mut s = FnStream::new(|| Some(Op::compute())).with_segment(0x400, 8);
        let pcs: Vec<u64> = (0..5).map(|_| s.next_instr().unwrap().pc).collect();
        assert_eq!(pcs, vec![0x400, 0x404, 0x400, 0x404, 0x400]);
        assert_eq!(s.segment(), Some((0x400, 8)));
    }

    #[test]
    fn boxed_stream_delegates() {
        let mut b: Box<dyn InstructionStream> =
            Box::new(FnStream::new(|| Some(Op::compute())).with_segment(0, 4));
        assert!(b.next_instr().is_some());
        assert_eq!(b.segment(), Some((0, 4)));
    }

    #[test]
    #[should_panic(expected = "bad segment length")]
    fn unaligned_segment_rejected() {
        let _ = FnStream::new(|| None).with_segment(0, 6);
    }
}
