//! Abstract throughput ISA for the SmarCo reproduction.
//!
//! SmarCo's TCG cores are 4-wide, 8-stage, in-order superscalar pipelines
//! (an extension of the ARM11 line, §3.1). For architecture studies the
//! *timing-relevant* behaviour of a thread is its instruction mix and its
//! memory address/granularity stream, not the arithmetic it performs — so
//! threads here execute programs of abstract [`op::Op`]s with **concrete
//! addresses**: caches, SPM, MACT and the NoC all see realistic locality
//! and granularity, while ALU work is carried as occupancy.
//!
//! Three ways to obtain a stream:
//!
//! * [`program::Program`] — an explicit finite instruction sequence with
//!   optional repetition, built with [`program::ProgramBuilder`].
//! * [`stream::FnStream`] — a closure-backed generator, used by the
//!   structured benchmark models in `smarco-workloads`.
//! * [`mix::SyntheticStream`] — a statistical generator parameterized by an
//!   [`mix::OpMix`] (instruction-class fractions, access-granularity
//!   distribution per Fig. 8, and a working-set locality model).
//!
//! Any stream can be captured with [`trace::Trace`] and replayed
//! bit-identically across machine configurations.

#![warn(missing_docs)]

pub mod mix;
pub mod op;
pub mod program;
pub mod stream;
pub mod trace;

pub use op::{Effect, Instr, MemRef, Op, Priority};
pub use program::{Program, ProgramBuilder};
pub use stream::InstructionStream;
