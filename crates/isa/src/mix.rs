//! Statistical instruction-stream generation.
//!
//! An [`OpMix`] captures what the paper measures about a workload class:
//! the instruction-class fractions, the branch behaviour, and — central to
//! Fig. 8 and the high-density-NoC / MACT studies — the **memory-access
//! granularity distribution** and locality. A [`SyntheticStream`] then
//! plays an endless (or bounded) instruction stream with those statistics
//! and a concrete, locality-faithful address stream.

use smarco_sim::rng::SimRng;

use crate::op::{MemRef, Op, Priority};
use crate::stream::{FnStream, InstructionStream};

/// Access-size distribution over power-of-two widths (1–64 bytes).
///
/// # Examples
///
/// ```
/// use smarco_isa::mix::GranularityMix;
///
/// // KMP-like: dominated by 1–2 byte accesses.
/// let g = GranularityMix::new([0.55, 0.30, 0.10, 0.05, 0.0, 0.0, 0.0]);
/// assert!((g.mean_bytes() - (0.55 + 0.6 + 0.4 + 0.4)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityMix {
    /// Weights for sizes `[1, 2, 4, 8, 16, 32, 64]`; need not sum to 1.
    weights: [f64; 7],
}

/// The power-of-two access sizes a [`GranularityMix`] distributes over.
pub const GRANULARITY_SIZES: [u8; 7] = [1, 2, 4, 8, 16, 32, 64];

impl GranularityMix {
    /// Creates a mix from weights for sizes `[1, 2, 4, 8, 16, 32, 64]`.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn new(weights: [f64; 7]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        Self { weights }
    }

    /// Uniform mix across all sizes.
    pub fn uniform() -> Self {
        Self::new([1.0; 7])
    }

    /// Samples an access size in bytes.
    pub fn sample(&self, rng: &mut SimRng) -> u8 {
        GRANULARITY_SIZES[rng.pick_weighted(&self.weights)]
    }

    /// Probability-weighted mean access size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .zip(GRANULARITY_SIZES)
            .map(|(&w, s)| w / total * f64::from(s))
            .sum()
    }

    /// Fraction of accesses of at most `bytes`.
    pub fn fraction_le(&self, bytes: u8) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .zip(GRANULARITY_SIZES)
            .filter(|&(_, s)| s <= bytes)
            .map(|(&w, _)| w / total)
            .sum()
    }

    /// The weights, in size order.
    pub fn weights(&self) -> &[f64; 7] {
        &self.weights
    }
}

/// Locality model for generated addresses: a hot region visited with
/// probability `hot_frac`, sequential striding with probability `seq_frac`,
/// otherwise uniform over the working set.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressModel {
    /// Base address of the thread's data region.
    pub base: u64,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Fraction of accesses that continue sequentially from the previous.
    pub seq_frac: f64,
    /// Fraction of (non-sequential) accesses that hit the hot region.
    pub hot_frac: f64,
    /// Hot-region size in bytes (≤ working_set).
    pub hot_bytes: u64,
}

impl AddressModel {
    /// A streaming model: mostly-sequential over `working_set`.
    pub fn streaming(base: u64, working_set: u64) -> Self {
        Self {
            base,
            working_set,
            seq_frac: 0.85,
            hot_frac: 0.2,
            hot_bytes: 4096,
        }
    }

    /// A random-access model: uniform over `working_set` with a small hot
    /// region.
    pub fn random(base: u64, working_set: u64) -> Self {
        Self {
            base,
            working_set,
            seq_frac: 0.05,
            hot_frac: 0.3,
            hot_bytes: 4096,
        }
    }
}

/// Statistical description of a workload's instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct OpMix {
    /// Fraction of instructions that access memory.
    pub mem_frac: f64,
    /// Of memory instructions, the fraction that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Probability a branch mispredicts.
    pub branch_miss: f64,
    /// Fraction of memory accesses carrying real-time priority.
    pub realtime_frac: f64,
    /// Access-size distribution.
    pub granularity: GranularityMix,
    /// Address locality model.
    pub addresses: AddressModel,
}

impl OpMix {
    /// Validates the mix and panics with a descriptive message when a
    /// fraction is out of `[0, 1]` or the class fractions exceed 1.
    pub fn validate(&self) {
        for (name, v) in [
            ("mem_frac", self.mem_frac),
            ("load_frac", self.load_frac),
            ("branch_frac", self.branch_frac),
            ("branch_miss", self.branch_miss),
            ("realtime_frac", self.realtime_frac),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} outside [0, 1]");
        }
        assert!(
            self.mem_frac + self.branch_frac <= 1.0,
            "mem_frac + branch_frac must not exceed 1"
        );
        assert!(
            self.addresses.working_set > 0,
            "working set must be positive"
        );
    }
}

/// An unbounded statistical instruction stream drawn from an [`OpMix`].
#[derive(Debug)]
pub struct SyntheticStream {
    mix: OpMix,
    rng: SimRng,
    cursor: u64,
    remaining: u64,
    exited: bool,
    pc: u64,
    segment: Option<(u64, u64)>,
}

impl SyntheticStream {
    /// Creates a stream of `instructions` dynamic instructions (the final
    /// `Exit` is added on top).
    ///
    /// # Panics
    ///
    /// Panics if the mix is invalid (see [`OpMix::validate`]) or
    /// `instructions` is zero.
    pub fn new(mix: OpMix, instructions: u64, rng: SimRng) -> Self {
        mix.validate();
        assert!(instructions > 0, "instruction budget must be positive");
        let cursor = mix.addresses.base;
        Self {
            mix,
            rng,
            cursor,
            remaining: instructions,
            exited: false,
            pc: 0,
            segment: None,
        }
    }

    /// Declares the instruction segment for shared-I-segment modelling; PCs
    /// wrap within `(base, bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or unaligned to the instruction size.
    pub fn with_segment(mut self, base: u64, bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(crate::op::INSTR_BYTES),
            "bad segment length {bytes}"
        );
        self.segment = Some((base, bytes));
        self.pc = base;
        self
    }

    fn next_addr(&mut self, bytes: u8) -> u64 {
        let a = &self.mix.addresses;
        let addr = if self.rng.chance(a.seq_frac) {
            self.cursor
        } else if self.rng.chance(a.hot_frac) {
            a.base + self.rng.gen_range(a.hot_bytes.min(a.working_set).max(1))
        } else {
            a.base + self.rng.gen_range(a.working_set)
        };
        // Keep inside the working set and aligned to the access width.
        let span = a.working_set.max(u64::from(bytes));
        let offset = (addr - a.base) % (span - u64::from(bytes) + 1);
        let aligned = offset - offset % u64::from(bytes);
        let addr = a.base + aligned;
        self.cursor = addr + u64::from(bytes);
        if self.cursor >= a.base + a.working_set {
            self.cursor = a.base;
        }
        addr
    }

    fn next_op(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let roll = self.rng.gen_f64();
        let op = if roll < self.mix.mem_frac {
            let bytes = self.mix.granularity.sample(&mut self.rng);
            let addr = self.next_addr(bytes);
            let priority = if self.rng.chance(self.mix.realtime_frac) {
                Priority::Realtime
            } else {
                Priority::Normal
            };
            let mem = MemRef {
                addr,
                bytes,
                priority,
            };
            if self.rng.chance(self.mix.load_frac) {
                Op::Load(mem)
            } else {
                Op::Store(mem)
            }
        } else if roll < self.mix.mem_frac + self.mix.branch_frac {
            Op::Branch {
                mispredicted: self.rng.chance(self.mix.branch_miss),
            }
        } else {
            Op::compute()
        };
        Some(op)
    }
}

impl InstructionStream for SyntheticStream {
    fn next_instr(&mut self) -> Option<crate::op::Instr> {
        if self.exited {
            return None;
        }
        let op = match self.next_op() {
            Some(op) => op,
            None => {
                self.exited = true;
                Op::Exit
            }
        };
        let pc = self.pc;
        self.pc += crate::op::INSTR_BYTES;
        if let Some((base, bytes)) = self.segment {
            if self.pc >= base + bytes {
                self.pc = base;
            }
        }
        Some(crate::op::Instr { pc, op })
    }

    fn segment(&self) -> Option<(u64, u64)> {
        self.segment
    }
}

/// Convenience: wraps an [`OpMix`] into a boxed stream usable anywhere a
/// generator closure is expected.
pub fn boxed_synthetic(
    mix: OpMix,
    instructions: u64,
    rng: SimRng,
) -> Box<dyn InstructionStream + Send> {
    Box::new(SyntheticStream::new(mix, instructions, rng))
}

/// Builds a simple closure stream emitting `n` compute ops (testing aid).
/// The stream loops in a 1 KB instruction segment, as real kernels do.
pub fn compute_only(n: u64) -> FnStream<impl FnMut() -> Option<Op>> {
    let mut left = n;
    FnStream::new(move || {
        if left == 0 {
            None
        } else {
            left -= 1;
            Some(Op::compute())
        }
    })
    .with_segment(0, 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mix() -> OpMix {
        OpMix {
            mem_frac: 0.4,
            load_frac: 0.7,
            branch_frac: 0.1,
            branch_miss: 0.05,
            realtime_frac: 0.0,
            granularity: GranularityMix::new([0.5, 0.3, 0.1, 0.1, 0.0, 0.0, 0.0]),
            addresses: AddressModel::random(0x10_0000, 1 << 20),
        }
    }

    fn drain(mut s: SyntheticStream) -> Vec<Op> {
        let mut ops = Vec::new();
        while let Some(i) = s.next_instr() {
            ops.push(i.op);
        }
        ops
    }

    #[test]
    fn produces_requested_length_plus_exit() {
        let ops = drain(SyntheticStream::new(test_mix(), 1000, SimRng::new(1)));
        assert_eq!(ops.len(), 1001);
        assert_eq!(*ops.last().unwrap(), Op::Exit);
    }

    #[test]
    fn class_fractions_roughly_match() {
        let ops = drain(SyntheticStream::new(test_mix(), 20_000, SimRng::new(2)));
        let mem = ops.iter().filter(|o| o.is_mem()).count() as f64 / ops.len() as f64;
        let br = ops
            .iter()
            .filter(|o| matches!(o, Op::Branch { .. }))
            .count() as f64
            / ops.len() as f64;
        assert!((mem - 0.4).abs() < 0.03, "mem fraction {mem}");
        assert!((br - 0.1).abs() < 0.02, "branch fraction {br}");
    }

    #[test]
    fn loads_dominate_stores_per_mix() {
        let ops = drain(SyntheticStream::new(test_mix(), 20_000, SimRng::new(3)));
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        let frac = loads as f64 / (loads + stores) as f64;
        assert!((frac - 0.7).abs() < 0.03, "load fraction {frac}");
    }

    #[test]
    fn addresses_stay_in_working_set_and_aligned() {
        let mix = test_mix();
        let base = mix.addresses.base;
        let ws = mix.addresses.working_set;
        let ops = drain(SyntheticStream::new(mix, 20_000, SimRng::new(4)));
        for op in ops {
            if let Some(m) = op.mem_ref() {
                assert!(m.addr >= base, "below base");
                assert!(m.end() <= base + ws, "beyond working set");
                assert_eq!(m.addr % u64::from(m.bytes), 0, "unaligned");
            }
        }
    }

    #[test]
    fn granularity_distribution_matches() {
        let ops = drain(SyntheticStream::new(test_mix(), 50_000, SimRng::new(5)));
        let sizes: Vec<u8> = ops
            .iter()
            .filter_map(Op::mem_ref)
            .map(|m| m.bytes)
            .collect();
        let small = sizes.iter().filter(|&&s| s <= 2).count() as f64 / sizes.len() as f64;
        assert!((small - 0.8).abs() < 0.03, "small-access fraction {small}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = drain(SyntheticStream::new(test_mix(), 500, SimRng::new(42)));
        let b = drain(SyntheticStream::new(test_mix(), 500, SimRng::new(42)));
        assert_eq!(a, b);
    }

    #[test]
    fn granularity_mix_stats() {
        let g = GranularityMix::new([1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert!((g.fraction_le(2) - 0.5).abs() < 1e-12);
        assert!((g.fraction_le(64) - 1.0).abs() < 1e-12);
        assert!((g.mean_bytes() - 3.75).abs() < 1e-12);
        let mut rng = SimRng::new(6);
        for _ in 0..100 {
            assert!(g.sample(&mut rng) <= 8);
        }
    }

    #[test]
    fn segment_wrapping_pcs() {
        let s = SyntheticStream::new(test_mix(), 100, SimRng::new(7)).with_segment(0x2000, 64);
        assert_eq!(s.segment(), Some((0x2000, 64)));
        let mut s = s;
        for _ in 0..200 {
            if let Some(i) = s.next_instr() {
                assert!((0x2000..0x2040).contains(&i.pc));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_mix_rejected() {
        let mut m = test_mix();
        m.mem_frac = 1.5;
        let _ = SyntheticStream::new(m, 10, SimRng::new(0));
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn zero_granularity_rejected() {
        let _ = GranularityMix::new([0.0; 7]);
    }

    #[test]
    fn compute_only_helper() {
        let mut s = compute_only(2);
        assert_eq!(s.next_instr().unwrap().op, Op::compute());
        assert_eq!(s.next_instr().unwrap().op, Op::compute());
        assert_eq!(s.next_instr().unwrap().op, Op::Exit);
        assert_eq!(s.next_instr(), None);
    }
}
