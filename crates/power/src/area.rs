//! Component area/power models and the Table 1 chip estimate.
//!
//! Constants below are the single calibration against Table 1 at 32 nm /
//! 1.5 GHz; everything else (other nodes, clocks, geometries) derives
//! from them through the models' structure.

use smarco_baseline::XeonConfig;
use smarco_core::config::SmarcoConfig;

use crate::tech::TechNode;

/// Core logic area per issue slot (mm² @ 32 nm).
const CORE_AREA_PER_ISSUE: f64 = 0.4;
/// Core logic area per resident thread context (mm² @ 32 nm).
const CORE_AREA_PER_THREAD: f64 = 0.109_726_562_5;
/// Core power per issue slot (W @ 32 nm, 1.5 GHz).
const CORE_POWER_PER_ISSUE: f64 = 0.15;
/// Core power per resident thread context (W @ 32 nm, 1.5 GHz).
const CORE_POWER_PER_THREAD: f64 = 0.027_495_117_187_5;
/// Router area per byte of link width (mm² @ 32 nm, Orion-style).
const ROUTER_AREA_PER_BYTE: f64 = 0.005_679_391_139_240_5;
/// Router power per byte of link width (W @ 32 nm, 1.5 GHz).
const ROUTER_POWER_PER_BYTE: f64 = 0.001_438_884_493_670_886;
/// MACT area per table line (mm² @ 32 nm).
const MACT_AREA_PER_LINE: f64 = 0.002_792_968_75;
/// MACT power per table line (W @ 32 nm, 1.5 GHz).
const MACT_POWER_PER_LINE: f64 = 0.000_273_437_5;
/// On-chip SRAM area per MiB (mm² @ 32 nm, CACTI-style).
const SRAM_AREA_PER_MIB: f64 = 1.1225;
/// On-chip SRAM power per MiB (W @ 32 nm, 1.5 GHz).
const SRAM_POWER_PER_MIB: f64 = 0.046;
/// Memory controller + PHY area per channel (mm² @ 32 nm).
const MC_AREA_PER_CHANNEL: f64 = 3.23;
/// Memory controller + PHY power per channel (W @ 32 nm).
const MC_POWER_PER_CHANNEL: f64 = 3.4125;

/// Fraction of component power that is dynamic (frequency-scaled); the
/// rest is leakage (area-scaled).
const DYNAMIC_FRACTION: f64 = 0.7;
/// Calibration clock for the power constants.
const CAL_FREQ_GHZ: f64 = 1.5;

/// Area/power of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentEstimate {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Peak power in watts.
    pub power_w: f64,
}

impl ComponentEstimate {
    fn scaled(area32: f64, power32: f64, node: TechNode, freq_ghz: f64) -> Self {
        node.validate();
        let power = power32
            * (DYNAMIC_FRACTION * node.dynamic_scale() * (freq_ghz / CAL_FREQ_GHZ)
                + (1.0 - DYNAMIC_FRACTION) * node.static_scale());
        Self {
            area_mm2: area32 * node.area_scale(),
            power_w: power,
        }
    }
}

/// A whole-chip estimate: named components plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipEstimate {
    /// `(component, estimate)` rows in Table 1 order.
    pub components: Vec<(&'static str, ComponentEstimate)>,
}

impl ChipEstimate {
    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|(_, c)| c.area_mm2).sum()
    }

    /// Total (peak) power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.components.iter().map(|(_, c)| c.power_w).sum()
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<ComponentEstimate> {
        self.components
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
    }
}

impl std::fmt::Display for ChipEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<16} {:>10} {:>10}",
            "Component", "Area(mm2)", "Power(W)"
        )?;
        for (name, c) in &self.components {
            writeln!(f, "{:<16} {:>10.2} {:>10.2}", name, c.area_mm2, c.power_w)?;
        }
        writeln!(
            f,
            "{:<16} {:>10.2} {:>10.2}",
            "Total",
            self.total_area_mm2(),
            self.total_power_w()
        )
    }
}

/// Estimates a SmarCo chip (reproduces Table 1 at 32 nm with the default
/// configuration).
///
/// # Examples
///
/// ```
/// use smarco_power::{estimate_smarco, TechNode};
/// use smarco_core::config::SmarcoConfig;
///
/// let est = estimate_smarco(&SmarcoConfig::smarco(), TechNode::n32());
/// assert!((est.total_area_mm2() - 751.0).abs() < 8.0);
/// assert!((est.total_power_w() - 240.09).abs() < 2.5);
/// ```
pub fn estimate_smarco(cfg: &SmarcoConfig, node: TechNode) -> ChipEstimate {
    cfg.validate();
    let cores = cfg.noc.cores() as f64;
    let issue = cfg.tcg.pairs as f64;
    let threads = cfg.tcg.resident_threads as f64;
    let f = cfg.freq_ghz;

    let core_area = cores * (CORE_AREA_PER_ISSUE * issue + CORE_AREA_PER_THREAD * threads);
    let core_power = cores * (CORE_POWER_PER_ISSUE * issue + CORE_POWER_PER_THREAD * threads);

    // Routers: every sub-ring position plus the junction, and the main
    // ring's endpoints/junctions; width = both directions' peak lanes.
    let sub_routers = (cfg.noc.subrings * (cfg.noc.cores_per_subring + 1)) as f64;
    let sub_width = (cfg.noc.sub_link.lanes_fixed_per_dir * 2 + cfg.noc.sub_link.lanes_bidir)
        as f64
        * cfg.noc.sub_link.lane_bytes as f64;
    let main_routers = (cfg.noc.subrings + cfg.noc.mem_ctrls + 2) as f64;
    let main_width = (cfg.noc.main_link.lanes_fixed_per_dir * 2 + cfg.noc.main_link.lanes_bidir)
        as f64
        * cfg.noc.main_link.lane_bytes as f64;
    let router_bytes = sub_routers * sub_width + main_routers * main_width;
    let ring_area = ROUTER_AREA_PER_BYTE * router_bytes;
    let ring_power = ROUTER_POWER_PER_BYTE * router_bytes;

    let mact_lines = cfg.mact.map_or(0, |m| m.lines) as f64 * cfg.noc.subrings as f64;
    let mact_area = MACT_AREA_PER_LINE * mact_lines;
    let mact_power = MACT_POWER_PER_LINE * mact_lines;

    let sram_mib = cores * (cfg.tcg.l1i.size_bytes + cfg.tcg.l1d.size_bytes + (128 << 10)) as f64
        / (1024.0 * 1024.0);
    let sram_area = SRAM_AREA_PER_MIB * sram_mib;
    let sram_power = SRAM_POWER_PER_MIB * sram_mib;

    let channels = cfg.dram.channels as f64;
    let mc_area = MC_AREA_PER_CHANNEL * channels;
    let mc_power = MC_POWER_PER_CHANNEL * channels;

    ChipEstimate {
        components: vec![
            (
                "Cores",
                ComponentEstimate::scaled(core_area, core_power, node, f),
            ),
            (
                "Hierarchy Ring",
                ComponentEstimate::scaled(ring_area, ring_power, node, f),
            ),
            (
                "MACT",
                ComponentEstimate::scaled(mact_area, mact_power, node, f),
            ),
            (
                "SPM+Cache",
                ComponentEstimate::scaled(sram_area, sram_power, node, f),
            ),
            (
                "MC+PHY",
                ComponentEstimate::scaled(mc_area, mc_power, node, f),
            ),
        ],
    }
}

/// Nominal estimate for the baseline processor. Table 2 lists the Xeon's
/// TDP (165 W) and leaves its die area unpublished; we carry the TDP and
/// a public die-size estimate (~456 mm² for the 24-core Broadwell-EX die),
/// scaled linearly when a smaller test configuration is used — comparisons
/// use measured activity, not this peak.
pub fn estimate_xeon(cfg: &XeonConfig) -> ComponentEstimate {
    cfg.validate();
    let scale = cfg.cores as f64 / 24.0;
    ComponentEstimate {
        area_mm2: 456.0 * scale,
        power_w: 165.0 * scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table1_at_32nm() {
        let est = estimate_smarco(&SmarcoConfig::smarco(), TechNode::n32());
        let expect = [
            ("Cores", 634.32, 209.91),
            ("Hierarchy Ring", 57.43, 14.55),
            ("MACT", 1.43, 0.14),
            ("SPM+Cache", 44.90, 1.84),
            ("MC+PHY", 12.92, 13.65),
        ];
        for (name, area, power) in expect {
            let c = est
                .component(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(
                (c.area_mm2 - area).abs() / area < 0.01,
                "{name} area {} vs {area}",
                c.area_mm2
            );
            assert!(
                (c.power_w - power).abs() / power < 0.01,
                "{name} power {} vs {power}",
                c.power_w
            );
        }
        assert!((est.total_area_mm2() - 751.0).abs() < 7.51);
        assert!((est.total_power_w() - 240.09).abs() < 2.5);
    }

    #[test]
    fn forty_nm_prototype_scales_up_area() {
        let cfg = SmarcoConfig::prototype_40nm();
        let est = estimate_smarco(&cfg, TechNode::n40());
        let ref32 = estimate_smarco(&cfg, TechNode::n32());
        assert!(est.total_area_mm2() > ref32.total_area_mm2() * 1.5);
        // Prototype is 32 cores: far smaller than the full chip.
        let full = estimate_smarco(&SmarcoConfig::smarco(), TechNode::n32());
        assert!(est.total_area_mm2() < full.total_area_mm2() / 2.0);
    }

    #[test]
    fn power_scales_with_frequency() {
        let mut cfg = SmarcoConfig::smarco();
        cfg.freq_ghz = 0.75;
        let half = estimate_smarco(&cfg, TechNode::n32());
        let full = estimate_smarco(&SmarcoConfig::smarco(), TechNode::n32());
        assert!(half.total_power_w() < full.total_power_w());
        // Area unaffected by clock.
        assert!((half.total_area_mm2() - full.total_area_mm2()).abs() < 1e-9);
    }

    #[test]
    fn mact_disabled_removes_its_area() {
        let mut cfg = SmarcoConfig::smarco();
        cfg.mact = None;
        let est = estimate_smarco(&cfg, TechNode::n32());
        assert_eq!(est.component("MACT").unwrap().area_mm2, 0.0);
    }

    #[test]
    fn display_renders_table() {
        let est = estimate_smarco(&SmarcoConfig::smarco(), TechNode::n32());
        let s = est.to_string();
        assert!(s.contains("Cores"));
        assert!(s.contains("Total"));
    }

    #[test]
    fn xeon_estimate_carries_tdp() {
        let e = estimate_xeon(&XeonConfig::e7_8890v4());
        assert_eq!(e.power_w, 165.0);
    }
}
