//! Technology-node scaling.
//!
//! Classical (Dennard-ish, as the paper's tool flow assumes) scaling from
//! the 32 nm reference node: area scales with feature size squared;
//! dynamic power with feature size (capacitance) at equal voltage; static
//! power with area.

/// A CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub nm: f64,
}

impl TechNode {
    /// The paper's evaluation node (Table 1).
    pub fn n32() -> Self {
        Self { nm: 32.0 }
    }

    /// The prototype's TSMC node (§4.4).
    pub fn n40() -> Self {
        Self { nm: 40.0 }
    }

    /// Area multiplier relative to 32 nm.
    pub fn area_scale(&self) -> f64 {
        (self.nm / 32.0).powi(2)
    }

    /// Dynamic-power multiplier relative to 32 nm at equal frequency.
    pub fn dynamic_scale(&self) -> f64 {
        self.nm / 32.0
    }

    /// Leakage multiplier relative to 32 nm (tracks area).
    pub fn static_scale(&self) -> f64 {
        self.area_scale()
    }

    /// Validates the node.
    ///
    /// # Panics
    ///
    /// Panics if the feature size is non-positive.
    pub fn validate(&self) {
        assert!(self.nm > 0.0, "feature size must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_is_identity() {
        let n = TechNode::n32();
        assert_eq!(n.area_scale(), 1.0);
        assert_eq!(n.dynamic_scale(), 1.0);
        assert_eq!(n.static_scale(), 1.0);
    }

    #[test]
    fn forty_nm_is_larger_and_hungrier() {
        let n = TechNode::n40();
        assert!((n.area_scale() - 1.5625).abs() < 1e-12);
        assert!((n.dynamic_scale() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_node_rejected() {
        TechNode { nm: 0.0 }.validate();
    }
}
