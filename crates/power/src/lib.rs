//! Analytic area/power/energy models (§4.2.5).
//!
//! The paper estimates area and power with McPAT, CACTI 6.0 and Orion 2.0
//! at a 32 nm node. We replace those tools with analytic per-component
//! models of the same form — SRAM arrays scale with capacity, core logic
//! with issue resources, routers with port×width — whose constants are
//! calibrated **once** against Table 1 at 32 nm, then reused unchanged for
//! every experiment (including the 40 nm prototype via classical
//! technology scaling).
//!
//! * [`tech`] — technology-node scaling factors.
//! * [`area`] — per-component area/power and the Table 1 chip estimate.
//! * [`energy`] — activity-based run energy and the performance-per-watt
//!   comparisons of Figs. 22 and 26.

#![warn(missing_docs)]

pub mod area;
pub mod energy;
pub mod tech;

pub use area::{estimate_smarco, estimate_xeon, ChipEstimate, ComponentEstimate};
pub use energy::{efficiency_ratio, run_energy, EnergyBreakdown};
pub use tech::TechNode;
