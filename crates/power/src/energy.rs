//! Activity-based run energy and performance-per-watt comparison
//! (Figs. 22 & 26).
//!
//! Each component's Table-1 peak power splits into leakage (always drawn)
//! and dynamic power scaled by the run's measured activity — core IPC
//! fraction, ring utilization, MACT occupancy, DRAM utilization. The
//! baseline uses its TDP with the same split, driven by its measured
//! issue-slot utilization. Energy efficiency is throughput per watt.

use smarco_baseline::{BaselineReport, XeonConfig};
use smarco_core::config::SmarcoConfig;
use smarco_core::report::SmarcoReport;

use crate::area::{estimate_smarco, estimate_xeon};
use crate::tech::TechNode;

/// Fraction of power that is leakage (drawn regardless of activity).
const STATIC_FRACTION: f64 = 0.3;

/// Energy accounting for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Average power draw in watts.
    pub avg_power_w: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Throughput in instructions per second.
    pub ips: f64,
}

impl EnergyBreakdown {
    /// Performance per watt (instructions per joule).
    pub fn efficiency(&self) -> f64 {
        if self.energy_j == 0.0 {
            0.0
        } else {
            self.ips / self.avg_power_w
        }
    }
}

fn activity_power(peak_w: f64, activity: f64) -> f64 {
    let a = activity.clamp(0.0, 1.0);
    peak_w * (STATIC_FRACTION + (1.0 - STATIC_FRACTION) * a)
}

/// Energy of a SmarCo run.
///
/// # Panics
///
/// Panics if the report covers zero cycles.
pub fn run_energy(report: &SmarcoReport, cfg: &SmarcoConfig, node: TechNode) -> EnergyBreakdown {
    assert!(report.cycles > 0, "empty run");
    let est = estimate_smarco(cfg, node);
    let core_activity = report.ipc() / (cfg.noc.cores() as f64 * cfg.tcg.pairs as f64);
    let ring_activity = (report.main_ring_utilization + report.subring_utilization) / 2.0;
    let mact_activity = if report.requests == 0 {
        0.0
    } else {
        report.mact_collected as f64 / report.requests as f64
    };
    let seconds = report.seconds(cfg.freq_ghz);
    let mut power = 0.0;
    for (name, c) in &est.components {
        let activity = match *name {
            "Cores" => core_activity,
            "Hierarchy Ring" => ring_activity,
            "MACT" => mact_activity,
            "SPM+Cache" => core_activity, // SRAM activity tracks the cores
            "MC+PHY" => report.dram_utilization,
            other => panic!("unknown component {other}"),
        };
        power += activity_power(c.power_w, activity);
    }
    EnergyBreakdown {
        seconds,
        avg_power_w: power,
        energy_j: power * seconds,
        ips: report.throughput(cfg.freq_ghz),
    }
}

/// Energy of a baseline (Xeon) run.
///
/// # Panics
///
/// Panics if the report covers zero cycles.
pub fn xeon_run_energy(report: &BaselineReport, cfg: &XeonConfig) -> EnergyBreakdown {
    assert!(report.cycles > 0, "empty run");
    let tdp = estimate_xeon(cfg).power_w;
    let activity = 1.0 - report.idle_ratio();
    let seconds = report.cycles as f64 / (cfg.freq_ghz * 1e9);
    let power = activity_power(tdp, activity);
    EnergyBreakdown {
        seconds,
        avg_power_w: power,
        energy_j: power * seconds,
        ips: report.throughput(cfg.freq_ghz),
    }
}

/// Energy-efficiency ratio (SmarCo over baseline): perf/W ÷ perf/W.
pub fn efficiency_ratio(smarco: &EnergyBreakdown, xeon: &EnergyBreakdown) -> f64 {
    if xeon.efficiency() == 0.0 {
        0.0
    } else {
        smarco.efficiency() / xeon.efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smarco_report(cycles: u64, instructions: u64) -> SmarcoReport {
        SmarcoReport {
            cycles,
            instructions,
            main_ring_utilization: 0.3,
            subring_utilization: 0.2,
            dram_utilization: 0.4,
            requests: 100,
            mact_collected: 80,
            ..Default::default()
        }
    }

    #[test]
    fn busier_run_draws_more_power() {
        let cfg = SmarcoConfig::smarco();
        let idle = run_energy(&smarco_report(1000, 10), &cfg, TechNode::n32());
        let busy = run_energy(&smarco_report(1000, 900_000), &cfg, TechNode::n32());
        assert!(busy.avg_power_w > idle.avg_power_w);
        // Even idle, leakage keeps the floor up.
        assert!(idle.avg_power_w > 0.25 * 240.0);
        // Never exceeds peak.
        assert!(busy.avg_power_w <= 241.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let cfg = SmarcoConfig::smarco();
        let e = run_energy(
            &smarco_report(1_500_000_000, 1_000_000),
            &cfg,
            TechNode::n32(),
        );
        assert!((e.seconds - 1.0).abs() < 1e-9);
        assert!((e.energy_j - e.avg_power_w).abs() < 1e-9);
    }

    #[test]
    fn xeon_energy_uses_tdp_and_idle_ratio() {
        let mut r = BaselineReport {
            cycles: 2_200_000_000,
            instructions: 1_000_000,
            ..Default::default()
        };
        r.issue_slots = 100;
        r.issue_used = 50;
        let e = xeon_run_energy(&r, &XeonConfig::e7_8890v4());
        assert!((e.seconds - 1.0).abs() < 1e-9);
        // 50% active: 0.3·165 + 0.7·165·0.5 = 107.25 W.
        assert!((e.avg_power_w - 107.25).abs() < 1e-9);
    }

    #[test]
    fn efficiency_ratio_favors_faster_lower_power() {
        let a = EnergyBreakdown {
            seconds: 1.0,
            avg_power_w: 100.0,
            energy_j: 100.0,
            ips: 1e9,
        };
        let b = EnergyBreakdown {
            seconds: 1.0,
            avg_power_w: 200.0,
            energy_j: 200.0,
            ips: 0.5e9,
        };
        assert!((efficiency_ratio(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_run_rejected() {
        let cfg = SmarcoConfig::smarco();
        let _ = run_energy(&SmarcoReport::default(), &cfg, TechNode::n32());
    }
}
