//! The MapReduce framework over the simulated chip (§3.6, Fig. 15).
//!
//! The framework does what the paper describes: slice the input dataset
//! into equal stacks sized to the hardware, map the map tasks onto the
//! cores of the chosen map sub-rings (one task per TCG thread), stage each
//! task's slice into its core's SPM by DMA when it fits (the DMA + Sync
//! prologue is prepended to the task's instruction stream, so staging cost
//! is paid in simulated time), run the map phase to completion, then run
//! reduce tasks on the reduce sub-rings over the map results, and report
//! per-phase cycle counts.

use smarco_core::chip::SmarcoSystem;
use smarco_core::error::SmarcoError;
use smarco_core::report::SmarcoReport;
use smarco_isa::op::{Instr, Op, INSTR_BYTES};
use smarco_isa::stream::InstructionStream;
use smarco_mem::spm::Spm;
use smarco_sim::Cycle;

/// One map task's placement and data slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapTask {
    /// Task index.
    pub index: usize,
    /// Total map tasks.
    pub total: usize,
    /// Core the task runs on.
    pub core: usize,
    /// Thread slot on that core.
    pub slot: usize,
    /// Base address of the task's input slice (SPM window when staged).
    pub slice_base: u64,
    /// Slice length in bytes.
    pub slice_len: u64,
    /// Whether the slice was staged into SPM.
    pub in_spm: bool,
    /// Per-task deterministic seed.
    pub seed: u64,
}

/// One reduce task's placement and input partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceTask {
    /// Task index.
    pub index: usize,
    /// Total reduce tasks.
    pub total: usize,
    /// Core the task runs on.
    pub core: usize,
    /// Thread slot on that core.
    pub slot: usize,
    /// Base address of the task's result partition.
    pub partition_base: u64,
    /// Partition length in bytes.
    pub partition_len: u64,
    /// Whether the partition was staged into SPM.
    pub in_spm: bool,
    /// Per-task deterministic seed.
    pub seed: u64,
}

/// An application: provides the instruction streams of its map and reduce
/// tasks.
pub trait MapReduceApp {
    /// Stream of one map task.
    fn map_stream(&self, task: &MapTask) -> Box<dyn InstructionStream + Send>;
    /// Stream of one reduce task.
    fn reduce_stream(&self, task: &ReduceTask) -> Box<dyn InstructionStream + Send>;
}

/// Job configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReduceConfig {
    /// Sub-rings that run map tasks.
    pub map_subrings: std::ops::Range<usize>,
    /// Sub-rings that run reduce tasks.
    pub reduce_subrings: std::ops::Range<usize>,
    /// Map/reduce tasks per core (≤ resident threads).
    pub threads_per_core: usize,
    /// Input dataset base address (DRAM).
    pub input_base: u64,
    /// Input dataset length in bytes.
    pub input_len: u64,
    /// Map-output (shuffle) region base address (DRAM).
    pub shuffle_base: u64,
    /// Shuffle region length in bytes.
    pub shuffle_len: u64,
    /// Per-phase cycle budget.
    pub phase_budget: Cycle,
}

impl MapReduceConfig {
    /// A default split over a chip with `subrings` sub-rings: first ¾ map,
    /// last ¼ (at least one) reduce.
    pub fn split(subrings: usize, input_base: u64, input_len: u64) -> Self {
        let reducers = (subrings / 4).max(1);
        Self {
            map_subrings: 0..subrings - reducers,
            reduce_subrings: subrings - reducers..subrings,
            threads_per_core: 8,
            input_base,
            input_len,
            shuffle_base: input_base + input_len.next_power_of_two(),
            shuffle_len: (input_len / 4).max(4096),
            phase_budget: 100_000_000,
        }
    }

    /// Checks the job against a chip's topology, reporting the first
    /// problem as a value.
    ///
    /// # Errors
    ///
    /// Describes empty ranges, overlap, or out-of-range sub-rings.
    pub fn check(&self, subrings: usize, resident_threads: usize) -> Result<(), String> {
        if self.map_subrings.is_empty() {
            return Err("need map sub-rings".into());
        }
        if self.reduce_subrings.is_empty() {
            return Err("need reduce sub-rings".into());
        }
        if self.map_subrings.end > subrings {
            return Err("map sub-rings out of range".into());
        }
        if self.reduce_subrings.end > subrings {
            return Err("reduce sub-rings out of range".into());
        }
        if !(self.map_subrings.end <= self.reduce_subrings.start
            || self.reduce_subrings.end <= self.map_subrings.start)
        {
            return Err("map and reduce sub-rings must not overlap".into());
        }
        if self.threads_per_core == 0 || self.threads_per_core > resident_threads {
            return Err("threads per core out of range".into());
        }
        if self.input_len == 0 {
            return Err("empty input".into());
        }
        Ok(())
    }

    /// Validates against a chip's topology.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges, overlap, or out-of-range sub-rings.
    pub fn validate(&self, subrings: usize, resident_threads: usize) {
        if let Err(reason) = self.check(subrings, resident_threads) {
            panic!("{reason}");
        }
    }
}

/// Per-phase and whole-job timing.
#[derive(Debug, Clone)]
pub struct MapReduceRun {
    /// Map tasks launched.
    pub map_tasks: usize,
    /// Reduce tasks launched.
    pub reduce_tasks: usize,
    /// Cycles the map phase took.
    pub map_cycles: Cycle,
    /// Cycles the reduce phase took.
    pub reduce_cycles: Cycle,
    /// Shard-cycles the PDES engine stepped one by one (host-side cost,
    /// not a simulated quantity).
    pub stepped_cycles: u64,
    /// Shard-cycles the engine fast-forwarded past via event horizons.
    pub skipped_cycles: u64,
    /// Host-side self-profile of the PDES engine, when the system was
    /// built with profiling enabled (`None` otherwise). Covers the whole
    /// job — both phases share the engine's accumulators.
    pub profile: Option<smarco_sim::prof::ProfileReport>,
    /// Final chip report (cumulative).
    pub report: SmarcoReport,
}

impl MapReduceRun {
    /// Total job cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.map_cycles + self.reduce_cycles
    }

    /// Fraction of shard-cycles the engine skipped rather than stepped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }
}

/// A stream that plays a fixed prologue (DMA staging) before an inner
/// stream.
struct PrologueStream {
    prologue: Vec<Op>,
    at: usize,
    pc: u64,
    inner: Box<dyn InstructionStream + Send>,
}

impl InstructionStream for PrologueStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.at < self.prologue.len() {
            let op = self.prologue[self.at];
            self.at += 1;
            let pc = self.pc;
            self.pc += INSTR_BYTES;
            return Some(Instr { pc, op });
        }
        self.inner.next_instr()
    }
    fn segment(&self) -> Option<(u64, u64)> {
        self.inner.segment()
    }
}

fn stage_prologue(dram_src: u64, spm_dst: u64, bytes: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut off = 0;
    // DMA in ≤4 MB chunks (the control registers take a 32-bit size).
    while off < bytes {
        let chunk = (bytes - off).min(4 << 20) as u32;
        ops.push(Op::Dma {
            src: dram_src + off,
            dst: spm_dst + off,
            bytes: chunk,
        });
        off += u64::from(chunk);
    }
    ops.push(Op::Sync);
    ops
}

/// Runs a MapReduce job on `sys`; returns per-phase timing.
///
/// # Errors
///
/// [`SmarcoError::InvalidPlan`] when the config doesn't fit the chip,
/// [`SmarcoError::CoreFull`] when a task's core has no vacant slot (e.g.
/// the chip was pre-loaded, or a core died and was quarantined).
///
/// # Panics
///
/// Panics if a phase exceeds its cycle budget.
pub fn run_mapreduce(
    sys: &mut SmarcoSystem,
    app: &dyn MapReduceApp,
    config: &MapReduceConfig,
) -> Result<MapReduceRun, SmarcoError> {
    let noc = sys.config().noc;
    config
        .check(noc.subrings, sys.config().tcg.resident_threads)
        .map_err(|reason| SmarcoError::InvalidPlan { reason })?;
    let space = sys.address_space();
    let cps = noc.cores_per_subring;
    let spm_per_task = Spm::data_bytes() / config.threads_per_core as u64;

    // ---- Map phase ----
    let map_cores: Vec<usize> = config
        .map_subrings
        .clone()
        .flat_map(|sr| sr * cps..(sr + 1) * cps)
        .collect();
    let total_map = map_cores.len() * config.threads_per_core;
    let slice_len = (config.input_len / total_map as u64).max(1);
    let mut index = 0;
    for &core in &map_cores {
        for slot in 0..config.threads_per_core {
            let dram_slice = config.input_base + index as u64 * slice_len;
            let fits = slice_len <= spm_per_task;
            let slice_base = if fits {
                space.spm_base(core) + slot as u64 * spm_per_task
            } else {
                dram_slice
            };
            let task = MapTask {
                index,
                total: total_map,
                core,
                slot,
                slice_base,
                slice_len,
                in_spm: fits,
                seed: 0x5eed_0000 + index as u64,
            };
            let inner = app.map_stream(&task);
            let stream: Box<dyn InstructionStream + Send> = if fits {
                Box::new(PrologueStream {
                    prologue: stage_prologue(dram_slice, slice_base, slice_len),
                    at: 0,
                    pc: inner.segment().map_or(0, |(b, _)| b),
                    inner,
                })
            } else {
                inner
            };
            sys.attach(core, stream)?;
            index += 1;
        }
    }
    let start = sys.report().cycles;
    let report = sys.run(start + config.phase_budget);
    assert!(sys.is_done(), "map phase exceeded its cycle budget");
    let map_cycles = report.cycles - start;

    // ---- Reduce phase ----
    let reduce_cores: Vec<usize> = config
        .reduce_subrings
        .clone()
        .flat_map(|sr| sr * cps..(sr + 1) * cps)
        .collect();
    let total_reduce = reduce_cores.len() * config.threads_per_core;
    let part_len = (config.shuffle_len / total_reduce as u64).max(1);
    let mut index = 0;
    for &core in &reduce_cores {
        for slot in 0..config.threads_per_core {
            let dram_part = config.shuffle_base + index as u64 * part_len;
            let fits = part_len <= spm_per_task;
            let partition_base = if fits {
                space.spm_base(core) + slot as u64 * spm_per_task
            } else {
                dram_part
            };
            let task = ReduceTask {
                index,
                total: total_reduce,
                core,
                slot,
                partition_base,
                partition_len: part_len,
                in_spm: fits,
                seed: 0x0dd_0000 + index as u64,
            };
            let inner = app.reduce_stream(&task);
            let stream: Box<dyn InstructionStream + Send> = if fits {
                Box::new(PrologueStream {
                    prologue: stage_prologue(dram_part, partition_base, part_len),
                    at: 0,
                    pc: inner.segment().map_or(0, |(b, _)| b),
                    inner,
                })
            } else {
                inner
            };
            sys.attach(core, stream)?;
            index += 1;
        }
    }
    let start = sys.report().cycles;
    let report = sys.run(start + config.phase_budget);
    assert!(sys.is_done(), "reduce phase exceeded its cycle budget");
    let reduce_cycles = report.cycles - start;

    Ok(MapReduceRun {
        map_tasks: total_map,
        reduce_tasks: total_reduce,
        map_cycles,
        reduce_cycles,
        stepped_cycles: sys.stepped_cycles(),
        skipped_cycles: sys.skipped_cycles(),
        profile: sys.profile_report(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_core::config::SmarcoConfig;
    use smarco_sim::rng::SimRng;
    use smarco_workloads::Benchmark;

    /// Adapter: drives a benchmark's structured generator as map/reduce
    /// tasks.
    struct BenchApp {
        bench: Benchmark,
        map_ops: u64,
        reduce_ops: u64,
    }

    impl BenchApp {
        /// When a task is SPM-staged its output buffer and hot table
        /// window must live inside the staged share too: the generator's
        /// default 256 KB output buffer right after the slice would
        /// overrun the share into the neighbouring slots (smarco-lint
        /// reports it as SL0201/SL0303).
        fn params(
            &self,
            base: u64,
            len: u64,
            in_spm: bool,
            ops: u64,
        ) -> smarco_workloads::ThreadGenParams {
            // Slice is private: no team interleaving inside it.
            let mut p = self.bench.thread_params(base, len, 0x3000_0000, 0, 1, ops);
            if in_spm {
                let hot = p.table_hot_bytes.min(4 << 10).min(len / 2);
                p.out_len = 4 << 10;
                p.out_base = base + len;
                p.table_hot_bytes = hot.max(64);
                p.table_hot_base = Some(base);
            }
            p
        }
    }

    impl MapReduceApp for BenchApp {
        fn map_stream(&self, t: &MapTask) -> Box<dyn InstructionStream + Send> {
            let p = self.params(t.slice_base, t.slice_len, t.in_spm, self.map_ops);
            Box::new(smarco_workloads::HtcStream::new(p, SimRng::new(t.seed)))
        }
        fn reduce_stream(&self, t: &ReduceTask) -> Box<dyn InstructionStream + Send> {
            let p = self.params(t.partition_base, t.partition_len, t.in_spm, self.reduce_ops);
            Box::new(smarco_workloads::HtcStream::new(p, SimRng::new(t.seed)))
        }
    }

    #[test]
    fn job_runs_both_phases() {
        let mut sys = SmarcoSystem::builder()
            .config(SmarcoConfig::tiny())
            .build()
            .unwrap();
        let cfg = MapReduceConfig {
            threads_per_core: 4,
            phase_budget: 20_000_000,
            ..MapReduceConfig::split(4, 0x100_0000, 1 << 22)
        };
        let app = BenchApp {
            bench: Benchmark::WordCount,
            map_ops: 500,
            reduce_ops: 200,
        };
        let run = run_mapreduce(&mut sys, &app, &cfg).unwrap();
        assert_eq!(run.map_tasks, 3 * 4 * 4);
        assert_eq!(run.reduce_tasks, 4 * 4);
        assert!(run.map_cycles > 0);
        assert!(run.reduce_cycles > 0);
        // 4 MB over 48 map tasks → ~87 KB slices: too big for SPM shares,
        // so no DMA prologue — every task runs ops + Exit.
        assert_eq!(
            run.report.instructions as usize,
            run.map_tasks * 501 + run.reduce_tasks * 201
        );
    }

    #[test]
    fn spm_staging_applies_when_slices_fit() {
        let mut sys = SmarcoSystem::builder()
            .config(SmarcoConfig::tiny())
            .build()
            .unwrap();
        // 4 MB over 48 map tasks → ~87 KB per slice: too big for an SPM
        // share at 4 threads/core (≈32 KB), so tasks address DRAM.
        let big = MapReduceConfig {
            threads_per_core: 4,
            phase_budget: 50_000_000,
            ..MapReduceConfig::split(4, 0x100_0000, 4 << 20)
        };
        let app = BenchApp {
            bench: Benchmark::Kmp,
            map_ops: 300,
            reduce_ops: 100,
        };
        let run_big = run_mapreduce(&mut sys, &app, &big).unwrap();
        // 256 KB total → ~5 KB slices: staged into SPM.
        let mut sys2 = SmarcoSystem::builder()
            .config(SmarcoConfig::tiny())
            .build()
            .unwrap();
        let small = MapReduceConfig {
            threads_per_core: 4,
            phase_budget: 50_000_000,
            ..MapReduceConfig::split(4, 0x100_0000, 256 << 10)
        };
        let run_small = run_mapreduce(&mut sys2, &app, &small).unwrap();
        // Staged run keeps its scan traffic on-chip: far fewer DRAM
        // requests per instruction.
        let rate_big = run_big.report.requests as f64 / run_big.report.instructions as f64;
        let rate_small = run_small.report.requests as f64 / run_small.report.instructions as f64;
        assert!(
            rate_small < rate_big * 0.8,
            "staged {rate_small:.4} vs unstaged {rate_big:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_ranges_rejected() {
        let cfg = MapReduceConfig {
            map_subrings: 0..3,
            reduce_subrings: 2..4,
            ..MapReduceConfig::split(4, 0, 4096)
        };
        cfg.validate(4, 8);
    }
}
