//! A semantic MapReduce engine over Rust closures.
//!
//! This is the programming model of §3.6 computing real answers: slice the
//! input, run `map` per slice, shuffle by key hash into reducer
//! partitions, run `reduce` per key, and merge. The examples use it with
//! the functional kernels from `smarco-workloads` to show end-to-end
//! results, while [`crate::mapreduce`] models the timing on the chip.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Runs a MapReduce job: `map` turns one input item into key/value pairs,
/// `reduce` folds all values of one key. `partitions` models the reducer
/// count (results are identical for any positive value — verified by
/// property tests).
///
/// # Panics
///
/// Panics if `partitions` is zero.
///
/// # Examples
///
/// ```
/// use smarco_runtime::functional::map_reduce;
///
/// let docs = ["a b a", "b b c"];
/// let counts = map_reduce(
///     &docs,
///     |d| d.split_whitespace().map(|w| (w.to_owned(), 1u64)).collect(),
///     |_k, vs| vs.iter().sum(),
///     4,
/// );
/// assert_eq!(counts["a"], 2);
/// assert_eq!(counts["b"], 3);
/// ```
pub fn map_reduce<I, K, V, M, R>(
    inputs: &[I],
    map: M,
    reduce: R,
    partitions: usize,
) -> BTreeMap<K, V>
where
    K: Hash + Eq + Ord + Clone,
    M: Fn(&I) -> Vec<(K, V)>,
    R: Fn(&K, &[V]) -> V,
{
    assert!(partitions > 0, "need at least one reducer partition");
    // Map phase: each input item is one map task.
    let mut shuffled: Vec<HashMap<K, Vec<V>>> = (0..partitions).map(|_| HashMap::new()).collect();
    for item in inputs {
        for (k, v) in map(item) {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            let p = (h.finish() % partitions as u64) as usize;
            shuffled[p].entry(k).or_default().push(v);
        }
    }
    // Reduce phase per partition, then merge (the master's Merge()).
    let mut out = BTreeMap::new();
    for part in shuffled {
        for (k, vs) in part {
            let r = reduce(&k, &vs);
            out.insert(k, r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_workloads::kernels::wordcount;

    #[test]
    fn matches_direct_wordcount() {
        let docs = ["the cat sat", "the cat ran", "a dog"];
        let mr = map_reduce(
            &docs,
            |d| wordcount(d).into_iter().collect(),
            |_k, vs: &[u64]| vs.iter().sum(),
            3,
        );
        let direct = wordcount(&docs.join(" "));
        assert_eq!(mr.len(), direct.len());
        for (k, v) in direct {
            assert_eq!(mr[&k], v);
        }
    }

    #[test]
    fn partition_count_is_irrelevant_to_results() {
        let docs = ["x y z x", "y y", "z"];
        let base = map_reduce(
            &docs,
            |d| d.split_whitespace().map(|w| (w.to_owned(), 1u64)).collect(),
            |_k, vs| vs.iter().sum(),
            1,
        );
        for parts in [2, 3, 7, 16] {
            let r = map_reduce(
                &docs,
                |d| d.split_whitespace().map(|w| (w.to_owned(), 1u64)).collect(),
                |_k, vs| vs.iter().sum(),
                parts,
            );
            assert_eq!(r, base, "partitions = {parts}");
        }
    }

    #[test]
    fn max_reduce() {
        let nums = [3u64, 9, 1, 9, 4];
        let r = map_reduce(
            &nums,
            |&n| vec![(n % 2, n)],
            |_k, vs| *vs.iter().max().unwrap(),
            2,
        );
        assert_eq!(r[&1], 9);
        assert_eq!(r[&0], 4);
    }

    #[test]
    #[should_panic(expected = "at least one reducer")]
    fn zero_partitions_rejected() {
        let _ = map_reduce(&[1], |&n| vec![(n, n)], |_k, vs: &[i32]| vs[0], 0);
    }
}
