//! The basic pthreads-like model (§3.6): create threads, run them to
//! `pthread_exit`, join.

use smarco_core::chip::SmarcoSystem;
use smarco_core::error::SmarcoError;
use smarco_core::report::SmarcoReport;
use smarco_isa::InstructionStream;
use smarco_sched::MainScheduler;
use smarco_sim::Cycle;

/// Thread-management façade over a [`SmarcoSystem`].
///
/// Placement is load-balanced: the main scheduler (§3.7) tracks estimated
/// outstanding work per sub-ring and each new thread goes to the least
/// loaded one.
pub struct Threads {
    sys: SmarcoSystem,
    balancer: MainScheduler,
    created: u64,
}

impl std::fmt::Debug for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Threads")
            .field("created", &self.created)
            .finish()
    }
}

impl Threads {
    /// Wraps a chip.
    pub fn new(sys: SmarcoSystem) -> Self {
        let balancer = MainScheduler::new(sys.config().noc.subrings);
        Self {
            sys,
            balancer,
            created: 0,
        }
    }

    /// The underlying chip.
    pub fn system(&self) -> &SmarcoSystem {
        &self.sys
    }

    /// The underlying chip, mutable.
    pub fn system_mut(&mut self) -> &mut SmarcoSystem {
        &mut self.sys
    }

    /// Threads created so far.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Creates a thread (`pthread_create`): picks the least-loaded
    /// sub-ring, then the first core there with a vacant slot.
    ///
    /// # Errors
    ///
    /// Returns [`SmarcoError::NoVacancy`] — naming every sub-ring that was
    /// probed and full — when no core on the chip has a vacant slot.
    pub fn create(
        &mut self,
        stream: Box<dyn InstructionStream + Send>,
        estimated_work: u64,
    ) -> Result<(usize, usize), SmarcoError> {
        let cps = self.sys.config().noc.cores_per_subring;
        let mut stream = stream;
        // Least-loaded sub-ring first; fall through when a sub-ring has no
        // vacant thread slot.
        let mut tried = Vec::new();
        for sr in self.balancer.by_load() {
            for core in sr * cps..(sr + 1) * cps {
                match self.sys.try_attach(core, stream) {
                    Ok(thread) => {
                        self.created += 1;
                        self.balancer.assign_to(sr, estimated_work.max(1));
                        return Ok((core, thread));
                    }
                    Err(e) => stream = e.into_stream(),
                }
            }
            tried.push(sr);
        }
        tried.sort_unstable();
        Err(SmarcoError::NoVacancy { tried })
    }

    /// Runs the chip until all threads exit (`join`), or `max` cycles.
    pub fn join_all(&mut self, max: Cycle) -> SmarcoReport {
        self.sys.run(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_core::config::SmarcoConfig;
    use smarco_isa::mix::compute_only;

    #[test]
    fn create_and_join() {
        let mut t = Threads::new(
            SmarcoSystem::builder()
                .config(SmarcoConfig::tiny())
                .build()
                .unwrap(),
        );
        for _ in 0..32 {
            t.create(Box::new(compute_only(500)), 500).unwrap();
        }
        let r = t.join_all(1_000_000);
        assert_eq!(r.instructions, 32 * 501);
        assert_eq!(t.created(), 32);
    }

    #[test]
    fn placement_spreads_across_subrings() {
        let mut t = Threads::new(
            SmarcoSystem::builder()
                .config(SmarcoConfig::tiny())
                .build()
                .unwrap(),
        );
        let cps = t.system().config().noc.cores_per_subring;
        let mut subrings_used = std::collections::HashSet::new();
        for _ in 0..8 {
            let (core, _) = t.create(Box::new(compute_only(100)), 100).unwrap();
            subrings_used.insert(core / cps);
        }
        assert_eq!(
            subrings_used.len(),
            4,
            "8 equal threads spread over 4 sub-rings"
        );
    }

    #[test]
    fn chip_capacity_enforced() {
        let mut t = Threads::new(
            SmarcoSystem::builder()
                .config(SmarcoConfig::tiny())
                .build()
                .unwrap(),
        );
        let capacity = t.system().config().total_threads();
        for _ in 0..capacity {
            t.create(Box::new(compute_only(10)), 10).unwrap();
        }
        assert!(t.create(Box::new(compute_only(10)), 10).is_err());
    }
}
