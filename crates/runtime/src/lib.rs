//! Programming models over the SmarCo chip (§3.6).
//!
//! * [`threads`] — the POSIX-threads-like basic model: create threads
//!   (`pthread_create` ≈ [`threads::Threads::create`]), run to exit, with
//!   main-scheduler load balancing across sub-rings.
//! * [`mapreduce`] — the MapReduce framework (Fig. 15): slice the input
//!   into equal stacks, stage slices into SPM when they fit (DMA prologue
//!   otherwise touching DRAM), run map tasks on map sub-rings, then reduce
//!   tasks on reduce sub-rings, and report per-phase timing.
//! * [`functional`] — a real (semantic) MapReduce engine over Rust
//!   closures, used by the examples and correctness tests: the same
//!   programming model computing actual answers.

#![warn(missing_docs)]

pub mod functional;
pub mod mapreduce;
pub mod threads;

pub use mapreduce::{MapReduceApp, MapReduceConfig, MapReduceRun, MapTask, ReduceTask};
pub use threads::Threads;
