//! Processing-in-memory scan unit — the paper's §7 future work ("apply
//! in-memory computing techniques to handle those simple and fixed
//! computing patterns, such as string matching, to further reduce data
//! volume that needs to be transferred between memory and cores").
//!
//! A PIM scan command sweeps a memory range *inside* the DRAM device at
//! internal row bandwidth (far above the channel's IO rate) and returns
//! only the match result — the channel carries a command descriptor and a
//! small result instead of the whole text. The unit occupies its
//! channel's banks while scanning, so concurrent demand traffic to that
//! channel still queues behind it realistically.

use smarco_sim::event::EventWheel;
use smarco_sim::stats::Counter;
use smarco_sim::Cycle;

/// PIM scan-unit parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimConfig {
    /// Channels with a scan unit (must match the DRAM's channel count).
    pub channels: usize,
    /// Internal scan bandwidth per channel in bytes per core cycle —
    /// row-buffer bandwidth, several times the channel IO rate.
    pub scan_bytes_per_cycle: f64,
    /// Fixed cycles per command (issue, row activation, result return).
    pub command_overhead: Cycle,
}

impl PimConfig {
    /// SmarCo-attached defaults: internal scanning at 4× the channel IO
    /// rate (22.75 B/cy IO → 91 B/cy internal row bandwidth).
    pub fn smarco() -> Self {
        Self {
            channels: 4,
            scan_bytes_per_cycle: 91.0,
            command_overhead: 60,
        }
    }
}

#[derive(Debug, Clone)]
struct ScanChannel {
    busy_until: Cycle,
    bytes_scanned: u64,
}

/// Per-channel PIM scan units; completed commands return their payload.
///
/// # Examples
///
/// ```
/// use smarco_mem::pim::{PimConfig, PimUnit};
///
/// let mut pim: PimUnit<&str> = PimUnit::new(PimConfig::smarco());
/// pim.submit(0, 64 << 10, 0, "find 'GET /video'");
/// let mut done = Vec::new();
/// for now in 0..2_000 {
///     done.extend(pim.tick(now));
/// }
/// assert_eq!(done, vec!["find 'GET /video'"]);
/// ```
#[derive(Debug, Clone)]
pub struct PimUnit<T> {
    config: PimConfig,
    channels: Vec<ScanChannel>,
    completions: EventWheel<T>,
    commands: Counter,
}

impl<T> PimUnit<T> {
    /// Creates idle scan units.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or the bandwidth is non-positive.
    pub fn new(config: PimConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        assert!(
            config.scan_bytes_per_cycle > 0.0,
            "scan bandwidth must be positive"
        );
        Self {
            config,
            channels: vec![
                ScanChannel {
                    busy_until: 0,
                    bytes_scanned: 0
                };
                config.channels
            ],
            completions: EventWheel::new(),
            commands: Counter::new(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> PimConfig {
        self.config
    }

    /// Submits a scan of `bytes` on `channel` at `now`; the payload comes
    /// back from [`tick`](Self::tick) when the scan completes. Scans on
    /// one channel serialize (they own the banks).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `bytes` is zero.
    pub fn submit(&mut self, channel: usize, bytes: u64, now: Cycle, payload: T) {
        assert!(
            channel < self.channels.len(),
            "channel {channel} out of range"
        );
        assert!(bytes > 0, "zero-byte scan");
        let scan = (bytes as f64 / self.config.scan_bytes_per_cycle).ceil() as Cycle;
        let ch = &mut self.channels[channel];
        let start = ch.busy_until.max(now);
        let done = start + self.config.command_overhead + scan.max(1);
        ch.busy_until = done;
        ch.bytes_scanned += bytes;
        self.commands.inc();
        self.completions.schedule(done, payload);
    }

    /// Returns payloads of scans that completed at or before `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(p) = self.completions.pop_due(now) {
            out.push(p);
        }
        out
    }

    /// Whether all channels are idle.
    pub fn is_idle(&self) -> bool {
        self.completions.is_empty()
    }

    /// Commands accepted so far.
    pub fn commands(&self) -> u64 {
        self.commands.get()
    }

    /// Total bytes scanned in-memory (bytes that never crossed the
    /// channel).
    pub fn bytes_scanned(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes_scanned).sum()
    }

    /// The cycle at which `channel` frees up (for co-scheduling demand
    /// traffic around scans).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn busy_until(&self, channel: usize) -> Cycle {
        self.channels[channel].busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pim() -> PimUnit<u32> {
        PimUnit::new(PimConfig {
            channels: 2,
            scan_bytes_per_cycle: 64.0,
            command_overhead: 10,
        })
    }

    #[test]
    fn scan_takes_overhead_plus_sweep() {
        let mut p = pim();
        p.submit(0, 6400, 0, 1); // 100 cycles sweep + 10 overhead
        assert!(p.tick(109).is_empty());
        assert_eq!(p.tick(110), vec![1]);
        assert!(p.is_idle());
    }

    #[test]
    fn scans_serialize_per_channel_but_overlap_across() {
        let mut p = pim();
        p.submit(0, 640, 0, 1); // done 20
        p.submit(0, 640, 0, 2); // done 40
        p.submit(1, 640, 0, 3); // done 20
        let mut done = Vec::new();
        for now in 0..=50 {
            for v in p.tick(now) {
                done.push((now, v));
            }
        }
        assert_eq!(done, vec![(20, 1), (20, 3), (40, 2)]);
        assert_eq!(p.commands(), 3);
        assert_eq!(p.bytes_scanned(), 1920);
    }

    #[test]
    fn busy_until_tracks_queue() {
        let mut p = pim();
        p.submit(0, 6400, 5, 9);
        assert_eq!(p.busy_until(0), 5 + 110);
        assert_eq!(p.busy_until(1), 0);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_scan_rejected() {
        pim().submit(0, 0, 0, 1);
    }
}
