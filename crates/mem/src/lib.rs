//! Memory-hierarchy models for the SmarCo reproduction (§3.4, §3.5).
//!
//! * [`map`] — the unified address space: DRAM, per-core SPM windows with
//!   their control-register tails, and DDR channel interleaving.
//! * [`cache`] — set-associative LRU caches (SmarCo's 16 KB L1 I/D and the
//!   conventional baseline's L2/LLC reuse the same model).
//! * [`spm`] — programmer-managed scratchpad with block residency and
//!   miss-driven memory exchange.
//! * [`mact`] — the Memory Access Collection Table: batches small,
//!   discrete requests per sub-ring, flushing a line when its byte bitmap
//!   fills or its deadline (time threshold) expires; real-time requests
//!   bypass it.
//! * [`dram`] — DDR4 controller with per-channel queuing, a
//!   bandwidth-limited service model and event-driven completions.
//! * [`dma`] — the SPM DMA engine used for SPM↔SPM transfers and shared
//!   instruction-segment prefetch.
//! * [`pim`] — in-memory scan units (the paper's §7 in-memory-computing
//!   direction): fixed patterns like string matching run at internal row
//!   bandwidth and only results cross the channel.
//! * [`request`] — the request/response types that flow between cores,
//!   MACT, NoC and DRAM.

#![warn(missing_docs)]

pub mod cache;
pub mod dma;
pub mod dram;
pub mod mact;
pub mod map;
pub mod pim;
pub mod request;
pub mod spm;

pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use mact::{Batch, Mact, MactConfig, MactOutcome};
pub use map::{AddressSpace, RangeClass, Region};
pub use request::{MemRequest, RequestId};
pub use spm::Spm;
