//! Memory Access Collection Table (§3.4, Figs. 11–12).
//!
//! Large-scale HTC execution floods the NoC with small, discrete memory
//! requests. The MACT sits on each sub-ring and *collects* them: a line
//! holds {type (R/W), tag (64-byte base address), byte-bitmap vector,
//! deadline timer}. A line is packed into one batched memory request when
//!
//! * its bitmap fills (all 64 bytes referenced), or
//! * its deadline (the configurable **time threshold**, Fig. 19) expires, or
//! * the table is full and a new address needs a line (oldest-first spill).
//!
//! Requests marked with real-time priority bypass the table entirely, as do
//! requests that cross a 64-byte boundary (the collector tracks one line
//! per entry).

use smarco_sim::obs::{EventKind, TraceBuffer, Track};
use smarco_sim::stats::{Counter, MeanTracker};
use smarco_sim::Cycle;

use crate::request::MemRequest;

/// MACT geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MactConfig {
    /// Number of table lines per sub-ring.
    pub lines: usize,
    /// Bytes covered by one line's bitmap (the paper uses a byte-per-bit
    /// vector over the line).
    pub line_bytes: u64,
    /// Deadline: the longest time a line may wait before being flushed
    /// (Fig. 19 sweeps this; 16 cycles is best overall).
    pub threshold: Cycle,
}

impl Default for MactConfig {
    fn default() -> Self {
        Self {
            lines: 32,
            line_bytes: 64,
            threshold: 16,
        }
    }
}

/// What happened to an offered request.
#[derive(Debug, Clone, PartialEq)]
pub enum MactOutcome {
    /// Collected into a line; it will complete when its batch flushes.
    Collected,
    /// Not eligible (real-time priority or boundary-crossing); forward it
    /// on the ordinary path.
    Bypass(MemRequest),
}

/// A packed line on its way to memory: one NoC packet / DRAM burst that
/// answers every collected request inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// 64-byte-aligned base address.
    pub base: u64,
    /// Write (true) or read (false) line.
    pub is_write: bool,
    /// Number of distinct bytes referenced (popcount of the vector).
    pub bytes_referenced: u32,
    /// Span transferred from memory (the whole line).
    pub span_bytes: u64,
    /// The requests this batch answers.
    pub requests: Vec<MemRequest>,
    /// Cycle the line was opened.
    pub opened_at: Cycle,
    /// Why the line flushed.
    pub cause: FlushCause,
}

/// Why a line was packed and sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// Byte bitmap filled.
    BitmapFull,
    /// Deadline (time threshold) expired.
    Deadline,
    /// Table pressure: evicted to make room for a new line.
    Capacity,
    /// Explicit drain (end of simulation).
    Drain,
}

impl FlushCause {
    /// Stable name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            FlushCause::BitmapFull => "bitmap_full",
            FlushCause::Deadline => "deadline",
            FlushCause::Capacity => "capacity",
            FlushCause::Drain => "drain",
        }
    }
}

#[derive(Debug, Clone)]
struct MactLine {
    is_write: bool,
    base: u64,
    bitmap: u64,
    opened_at: Cycle,
    deadline: Cycle,
    requests: Vec<MemRequest>,
}

/// MACT statistics.
#[derive(Debug, Clone, Default)]
pub struct MactStats {
    /// Requests collected into lines.
    pub collected: Counter,
    /// Requests that bypassed the table.
    pub bypassed: Counter,
    /// Batches emitted.
    pub batches: Counter,
    /// Requests per emitted batch.
    pub requests_per_batch: MeanTracker,
    /// Flushes by cause: [bitmap-full, deadline, capacity, drain].
    pub flush_causes: [u64; 4],
    /// Extra cycles requests waited in the table (collection delay).
    pub wait_cycles: MeanTracker,
}

/// One sub-ring's Memory Access Collection Table.
///
/// # Examples
///
/// ```
/// use smarco_mem::{Mact, MactConfig};
/// use smarco_mem::request::{MemRequest, RequestIdAllocator};
/// use smarco_isa::MemRef;
///
/// let mut mact = Mact::new(MactConfig { threshold: 4, ..MactConfig::default() });
/// let mut ids = RequestIdAllocator::new();
/// let req = MemRequest {
///     id: ids.next_id(), core: 0, mem: MemRef::new(128, 4),
///     is_write: false, issued_at: 0,
/// };
/// mact.offer(req, 0);
/// assert!(mact.tick(3).is_empty());      // before the deadline
/// let batches = mact.tick(4);            // deadline expired
/// assert_eq!(batches.len(), 1);
/// assert_eq!(batches[0].requests.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mact {
    config: MactConfig,
    lines: Vec<MactLine>,
    ready: Vec<Batch>,
    stats: MactStats,
    /// Fault-injected lockup windows `[from, to)`, sorted by start: the
    /// deadline engine is frozen inside a window, so expired lines flush
    /// only once the window ends (bitmap-full and capacity flushes still
    /// fire — only the timer is dead).
    lockups: Vec<(Cycle, Cycle)>,
    trace: Option<TraceBuffer>,
}

impl Mact {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero, `line_bytes` is not in 1..=64, or the
    /// threshold is zero.
    pub fn new(config: MactConfig) -> Self {
        assert!(config.lines > 0, "MACT needs at least one line");
        assert!(
            (1..=64).contains(&config.line_bytes),
            "line bytes must be 1..=64"
        );
        assert!(config.threshold > 0, "threshold must be positive");
        Self {
            config,
            lines: Vec::with_capacity(config.lines),
            ready: Vec::new(),
            stats: MactStats::default(),
            lockups: Vec::new(),
            trace: None,
        }
    }

    /// Installs fault-injected deadline-engine lockup windows `[from, to)`.
    /// Sorted internally; [`next_event`](Self::next_event) pushes horizons
    /// that land inside a window out to its end, so cycle skipping sees
    /// the delayed flush exactly.
    pub fn set_lockups(&mut self, mut windows: Vec<(Cycle, Cycle)>) {
        windows.retain(|&(from, to)| from < to);
        windows.sort_unstable();
        self.lockups = windows;
    }

    /// Whether the deadline engine is locked up at `now`.
    pub fn locked(&self, now: Cycle) -> bool {
        self.lockups
            .iter()
            .any(|&(from, to)| (from..to).contains(&now))
    }

    /// Turns event tracing on, reporting on the MACT of sub-ring `sr`.
    pub fn enable_trace(&mut self, sr: usize) {
        self.trace = Some(TraceBuffer::new(Track::Mact(sr)));
    }

    /// The trace staging buffer, if tracing is enabled.
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.trace.as_mut()
    }

    /// Geometry and timing.
    pub fn config(&self) -> MactConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MactStats {
        &self.stats
    }

    /// Number of currently open lines.
    pub fn open_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total requests parked in open lines.
    pub fn pending_requests(&self) -> usize {
        self.lines.iter().map(|l| l.requests.len()).sum()
    }

    /// Batches flushed (by `offer`'s bitmap-full/capacity paths) but not
    /// yet collected through `tick`/`drain_ready`.
    pub fn ready_batches(&self) -> usize {
        self.ready.len()
    }

    /// Earliest deadline among open lines, if any.
    pub fn earliest_deadline(&self) -> Option<Cycle> {
        self.lines.iter().map(|l| l.deadline).min()
    }

    /// Event horizon: the earliest cycle at or after `now` at which a
    /// `tick` would produce a batch — immediately while flushed batches
    /// wait in the ready list, at the earliest open-line deadline
    /// otherwise, never for an empty table. The table mutates no
    /// statistics on an idle tick, so skipped cycles need no compensation.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.ready.is_empty() {
            return Some(now);
        }
        let d = self.earliest_deadline()?;
        let mut at = now.max(d);
        // A horizon inside a lockup window slides to the window's end —
        // windows are sorted by start, so one pass settles chains.
        for &(from, to) in &self.lockups {
            if (from..to).contains(&at) {
                at = to;
            }
        }
        Some(at)
    }

    fn line_base(&self, addr: u64) -> u64 {
        addr - addr % self.config.line_bytes
    }

    fn bitmap_for(&self, base: u64, addr: u64, bytes: u8) -> u64 {
        let start = addr - base;
        let mut bm = 0u64;
        for b in start..start + u64::from(bytes) {
            bm |= 1 << b;
        }
        bm
    }

    fn full_bitmap(&self) -> u64 {
        if self.config.line_bytes == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.line_bytes) - 1
        }
    }

    fn pack(&mut self, idx: usize, cause: FlushCause, now: Cycle) -> Batch {
        let line = self.lines.remove(idx);
        // Lint runtime cross-check (debug builds only): a packed line must
        // obey the invariants the static DMA/overlap pass assumes — every
        // collected request inside [base, base + line_bytes), and the bitmap
        // popcount never below the widest single request.
        #[cfg(debug_assertions)]
        {
            for req in &line.requests {
                debug_assert!(
                    req.mem.addr >= line.base
                        && req.mem.end() <= line.base + self.config.line_bytes,
                    "collected request [{:#x}, {:#x}) escapes its MACT line [{:#x}, {:#x})",
                    req.mem.addr,
                    req.mem.end(),
                    line.base,
                    line.base + self.config.line_bytes,
                );
            }
            let widest = line
                .requests
                .iter()
                .map(|r| u32::from(r.mem.bytes))
                .max()
                .unwrap_or(0);
            debug_assert!(
                line.bitmap.count_ones() >= widest,
                "MACT bitmap popcount {} below widest collected request ({widest} B)",
                line.bitmap.count_ones(),
            );
        }
        self.stats.batches.inc();
        self.stats
            .requests_per_batch
            .record(line.requests.len() as f64);
        self.stats.flush_causes[match cause {
            FlushCause::BitmapFull => 0,
            FlushCause::Deadline => 1,
            FlushCause::Capacity => 2,
            FlushCause::Drain => 3,
        }] += 1;
        if let Some(tb) = self.trace.as_mut() {
            tb.emit(
                now,
                EventKind::MactFlush {
                    base: line.base,
                    requests: line.requests.len() as u64,
                    cause: cause.name(),
                },
            );
        }
        Batch {
            base: line.base,
            is_write: line.is_write,
            bytes_referenced: line.bitmap.count_ones(),
            span_bytes: self.config.line_bytes,
            requests: line.requests,
            opened_at: line.opened_at,
            cause,
        }
    }

    /// Offers a request to the table at cycle `now`.
    ///
    /// Ineligible requests come straight back as [`MactOutcome::Bypass`].
    /// Collected requests complete when their line flushes (via
    /// [`tick`](Self::tick) or an immediate bitmap-full/capacity flush,
    /// which callers observe through [`drain_ready`](Self::drain_ready)).
    pub fn offer(&mut self, req: MemRequest, now: Cycle) -> MactOutcome {
        let base = self.line_base(req.mem.addr);
        let crosses = self.line_base(req.mem.end() - 1) != base;
        if !req.mact_eligible() || crosses || u64::from(req.mem.bytes) > self.config.line_bytes {
            self.stats.bypassed.inc();
            return MactOutcome::Bypass(req);
        }
        self.stats.collected.inc();
        if let Some(tb) = self.trace.as_mut() {
            tb.emit(now, EventKind::MactCollect { base });
        }
        let bitmap = self.bitmap_for(base, req.mem.addr, req.mem.bytes);
        // Merge into an existing line of the same type and tag.
        if let Some(i) = self
            .lines
            .iter()
            .position(|l| l.base == base && l.is_write == req.is_write)
        {
            self.lines[i].bitmap |= bitmap;
            self.lines[i].requests.push(req);
            if self.lines[i].bitmap == self.full_bitmap() {
                let batch = self.pack(i, FlushCause::BitmapFull, now);
                self.ready.push(batch);
            }
            return MactOutcome::Collected;
        }
        // Need a new line; spill the oldest when at capacity.
        if self.lines.len() == self.config.lines {
            let oldest = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.opened_at)
                .map(|(i, _)| i)
                .expect("table is non-empty");
            let batch = self.pack(oldest, FlushCause::Capacity, now);
            self.ready.push(batch);
        }
        self.lines.push(MactLine {
            is_write: req.is_write,
            base,
            bitmap,
            opened_at: now,
            deadline: now + self.config.threshold,
            requests: vec![req],
        });
        MactOutcome::Collected
    }

    /// Flushes lines whose deadline expired at `now` and returns every
    /// batch that became ready (including bitmap-full / capacity flushes
    /// accumulated since the last call).
    pub fn tick(&mut self, now: Cycle) -> Vec<Batch> {
        if !self.locked(now) {
            while let Some(i) = self.lines.iter().position(|l| now >= l.deadline) {
                let batch = self.pack(i, FlushCause::Deadline, now);
                self.ready.push(batch);
            }
        }
        self.record_waits(now);
        std::mem::take(&mut self.ready)
    }

    /// Drains batches flushed by `offer` (bitmap-full / capacity) without
    /// advancing time.
    pub fn drain_ready(&mut self) -> Vec<Batch> {
        std::mem::take(&mut self.ready)
    }

    /// Flushes everything immediately (end of run).
    pub fn drain_all(&mut self, now: Cycle) -> Vec<Batch> {
        while !self.lines.is_empty() {
            let batch = self.pack(0, FlushCause::Drain, now);
            self.ready.push(batch);
        }
        self.record_waits(now);
        std::mem::take(&mut self.ready)
    }

    fn record_waits(&mut self, now: Cycle) {
        for batch in &self.ready {
            for req in &batch.requests {
                self.stats
                    .wait_cycles
                    .record((now.saturating_sub(req.issued_at)) as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestIdAllocator;
    use smarco_isa::MemRef;

    fn req(ids: &mut RequestIdAllocator, addr: u64, bytes: u8, write: bool) -> MemRequest {
        MemRequest {
            id: ids.next_id(),
            core: 0,
            mem: MemRef::new(addr, bytes),
            is_write: write,
            issued_at: 0,
        }
    }

    fn mact(threshold: Cycle) -> Mact {
        Mact::new(MactConfig {
            lines: 4,
            line_bytes: 64,
            threshold,
        })
    }

    #[test]
    fn merges_same_line_requests_into_one_batch() {
        let mut m = mact(10);
        let mut ids = RequestIdAllocator::new();
        for i in 0..4 {
            assert_eq!(
                m.offer(req(&mut ids, i * 8, 8, false), 0),
                MactOutcome::Collected
            );
        }
        assert_eq!(m.open_lines(), 1);
        let batches = m.tick(10);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].requests.len(), 4);
        assert_eq!(batches[0].bytes_referenced, 32);
        assert_eq!(batches[0].cause, FlushCause::Deadline);
    }

    #[test]
    fn horizon_tracks_deadlines_and_ready_batches() {
        let mut m = mact(10);
        let mut ids = RequestIdAllocator::new();
        assert_eq!(m.next_event(5), None, "empty table has no horizon");
        m.offer(req(&mut ids, 0, 4, false), 3);
        assert_eq!(
            m.next_event(5),
            Some(13),
            "deadline = opened_at + threshold"
        );
        assert_eq!(m.next_event(20), Some(20), "overdue deadline clamps to now");
        for i in 0..8 {
            m.offer(req(&mut ids, i * 8, 8, false), 4);
        }
        assert!(m.ready_batches() > 0, "bitmap-full flush parked a batch");
        assert_eq!(m.next_event(5), Some(5), "ready batches act immediately");
        let _ = m.tick(20);
        assert_eq!(m.next_event(21), None);
    }

    #[test]
    fn reads_and_writes_use_separate_lines() {
        let mut m = mact(10);
        let mut ids = RequestIdAllocator::new();
        m.offer(req(&mut ids, 0, 4, false), 0);
        m.offer(req(&mut ids, 8, 4, true), 0);
        assert_eq!(m.open_lines(), 2);
    }

    #[test]
    fn bitmap_full_flushes_immediately() {
        let mut m = mact(1000);
        let mut ids = RequestIdAllocator::new();
        for i in 0..7 {
            m.offer(req(&mut ids, i * 8, 8, false), 0);
            assert!(m.drain_ready().is_empty());
        }
        m.offer(req(&mut ids, 56, 8, false), 0);
        let batches = m.drain_ready();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].cause, FlushCause::BitmapFull);
        assert_eq!(batches[0].bytes_referenced, 64);
        assert_eq!(m.open_lines(), 0);
    }

    #[test]
    fn realtime_requests_bypass() {
        let mut m = mact(10);
        let mut ids = RequestIdAllocator::new();
        let r = MemRequest {
            id: ids.next_id(),
            core: 0,
            mem: MemRef::realtime(0, 4),
            is_write: false,
            issued_at: 0,
        };
        assert!(matches!(m.offer(r, 0), MactOutcome::Bypass(_)));
        assert_eq!(m.stats().bypassed.get(), 1);
        assert_eq!(m.open_lines(), 0);
    }

    #[test]
    fn boundary_crossing_requests_bypass() {
        let mut m = mact(10);
        let mut ids = RequestIdAllocator::new();
        // 8 bytes starting at 60 crosses the 64-byte boundary. Construct an
        // unaligned ref directly.
        let r = MemRequest {
            id: ids.next_id(),
            core: 0,
            mem: MemRef::new(60, 8),
            is_write: false,
            issued_at: 0,
        };
        assert!(matches!(m.offer(r, 0), MactOutcome::Bypass(_)));
    }

    #[test]
    fn capacity_pressure_spills_oldest() {
        let mut m = mact(1000);
        let mut ids = RequestIdAllocator::new();
        for i in 0..4u64 {
            m.offer(req(&mut ids, i * 64, 4, false), i);
        }
        assert_eq!(m.open_lines(), 4);
        m.offer(req(&mut ids, 4 * 64, 4, false), 10);
        let batches = m.drain_ready();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].cause, FlushCause::Capacity);
        assert_eq!(batches[0].base, 0, "oldest line spilled first");
        assert_eq!(m.open_lines(), 4);
    }

    #[test]
    fn deadline_respects_threshold() {
        let mut m = mact(16);
        let mut ids = RequestIdAllocator::new();
        m.offer(req(&mut ids, 0, 4, false), 5);
        assert!(m.tick(20).is_empty());
        let batches = m.tick(21);
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn drain_all_empties_table() {
        let mut m = mact(1_000_000);
        let mut ids = RequestIdAllocator::new();
        for i in 0..3u64 {
            m.offer(req(&mut ids, i * 64, 4, false), 0);
        }
        let batches = m.drain_all(5);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.cause == FlushCause::Drain));
        assert_eq!(m.open_lines(), 0);
        assert_eq!(m.pending_requests(), 0);
    }

    #[test]
    fn request_reduction_is_tracked() {
        let mut m = mact(8);
        let mut ids = RequestIdAllocator::new();
        for i in 0..10 {
            m.offer(req(&mut ids, (i % 8) * 8, 8, false), 0);
        }
        let _ = m.tick(100);
        let s = m.stats();
        assert_eq!(s.collected.get(), 10);
        assert!(s.batches.get() < 10, "batching must reduce request count");
    }

    #[test]
    fn lockup_freezes_the_deadline_engine() {
        let mut m = mact(10);
        let mut ids = RequestIdAllocator::new();
        m.set_lockups(vec![(8, 30)]);
        m.offer(req(&mut ids, 0, 4, false), 0); // deadline 10, inside lockup
        assert!(m.locked(8) && m.locked(29) && !m.locked(30));
        // The horizon slides from the dead deadline to the window's end.
        assert_eq!(m.next_event(5), Some(30));
        for now in 10..30 {
            assert!(m.tick(now).is_empty(), "flushed during lockup at {now}");
        }
        let batches = m.tick(30);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].cause, FlushCause::Deadline);
    }

    #[test]
    fn bitmap_full_flushes_even_during_lockup() {
        let mut m = mact(1000);
        let mut ids = RequestIdAllocator::new();
        m.set_lockups(vec![(0, 100)]);
        for i in 0..8 {
            m.offer(req(&mut ids, i * 8, 8, false), 10);
        }
        let batches = m.drain_ready();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].cause, FlushCause::BitmapFull);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_rejected() {
        let _ = Mact::new(MactConfig {
            lines: 0,
            ..MactConfig::default()
        });
    }
}
