//! DDR memory-controller model (§3.5.3).
//!
//! Four controllers sit on the main ring with equal spacing; each owns one
//! 128-bit DDR4-2133 device, 136.5 GB/s aggregate. The model is a
//! bandwidth-limited queue per channel: a request occupies its channel for
//! `bytes / bytes_per_cycle` cycles and completes `base_latency` cycles
//! after its transfer starts. Batched MACT lines ride as a single burst —
//! the mechanism by which batching reduces request count and improves
//! effective bandwidth (Fig. 20).

use smarco_sim::event::EventWheel;
use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::stats::MeanTracker;
use smarco_sim::Cycle;

/// DDR controller timing/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Independent channels (controllers).
    pub channels: usize,
    /// Fixed access latency in core cycles (row activate + CAS + return
    /// trip through the controller).
    pub base_latency: Cycle,
    /// Service bandwidth per channel, in bytes per core cycle.
    pub bytes_per_cycle: f64,
    /// Minimum bytes one request occupies the channel for (DDR burst
    /// length × device width: a 2-byte demand still costs a full burst).
    /// This is exactly the waste the MACT's batching recovers — merged
    /// small requests share one burst.
    pub min_burst_bytes: u64,
}

impl DramConfig {
    /// SmarCo: 4 × DDR4-2133 128-bit, 136.5 GB/s total at 1.5 GHz core
    /// clock → 91 B/cycle aggregate, 22.75 B/cycle per channel; ~90-cycle
    /// base latency; BL8 × 128-bit = 128-byte minimum burst.
    pub fn smarco() -> Self {
        Self {
            channels: 4,
            base_latency: 90,
            bytes_per_cycle: 22.75,
            min_burst_bytes: 128,
        }
    }

    /// Baseline Xeon-like: 85 GB/s at 2.2 GHz → ~38.6 B/cycle aggregate
    /// over 4 channels; lower latency thanks to on-package controllers;
    /// BL8 × 64-bit = 64-byte bursts (its line-sized fills fit exactly).
    pub fn xeon() -> Self {
        Self {
            channels: 4,
            base_latency: 70,
            bytes_per_cycle: 9.66,
            min_burst_bytes: 64,
        }
    }
}

#[derive(Debug, Clone)]
struct Channel {
    busy_until: Cycle,
    busy_cycles: u64,
    bytes_served: u64,
}

/// A multi-channel DRAM with event-driven completions carrying a caller
/// payload `T` (typically a request id or a batch).
///
/// # Examples
///
/// ```
/// use smarco_mem::dram::{Dram, DramConfig};
///
/// let mut dram: Dram<&str> = Dram::new(DramConfig::smarco());
/// dram.enqueue(0, 64, 0, "req-a");
/// let mut done = Vec::new();
/// for now in 0..200 {
///     done.extend(dram.tick(now));
/// }
/// assert_eq!(done, vec!["req-a"]);
/// ```
#[derive(Debug, Clone)]
pub struct Dram<T> {
    config: DramConfig,
    channels: Vec<Channel>,
    completions: EventWheel<T>,
    latency: MeanTracker,
    queue_delay: MeanTracker,
    /// Fault-injected stall windows `(channel, from, to)`: a channel
    /// accepts no new bursts while stalled, so arrivals queue behind the
    /// window's end.
    stalls: Vec<(usize, Cycle, Cycle)>,
    /// Requests whose start was pushed back by a stall window.
    stalled_requests: u64,
    /// One staging buffer per channel when tracing is enabled.
    trace: Option<Vec<TraceBuffer>>,
}

impl<T> Dram<T> {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or the bandwidth is non-positive.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        assert!(config.bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            config,
            channels: vec![
                Channel {
                    busy_until: 0,
                    busy_cycles: 0,
                    bytes_served: 0
                };
                config.channels
            ],
            completions: EventWheel::new(),
            latency: MeanTracker::new(),
            queue_delay: MeanTracker::new(),
            stalls: Vec::new(),
            stalled_requests: 0,
            trace: None,
        }
    }

    /// Installs a fault-injected stall: `channel` starts no new bursts
    /// during `[from, to)`. Stalls only shift request start times at
    /// enqueue, so completions (and the [`next_event`](Self::next_event)
    /// horizon derived from them) stay exact under cycle skipping.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn stall_channel(&mut self, channel: usize, from: Cycle, to: Cycle) {
        assert!(
            channel < self.channels.len(),
            "channel {channel} out of range"
        );
        if from < to {
            self.stalls.push((channel, from, to));
            self.stalls.sort_unstable();
        }
    }

    /// Requests whose service was delayed by a stall window.
    pub fn stalled_requests(&self) -> u64 {
        self.stalled_requests
    }

    /// Turns event tracing on: each channel reports bursts on its own
    /// [`Track::DdrChannel`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(
            (0..self.channels.len())
                .map(|i| TraceBuffer::new(Track::DdrChannel(i)))
                .collect(),
        );
    }

    /// Moves staged burst events into `sink` (no-op when tracing is off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(bufs) = self.trace.as_mut() {
            for b in bufs {
                b.drain_into(sink);
            }
        }
    }

    /// Configuration.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Enqueues a transfer of `bytes` on `channel` at cycle `now`; the
    /// payload comes back from [`tick`](Self::tick) when the transfer
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `bytes` is zero.
    pub fn enqueue(&mut self, channel: usize, bytes: u64, now: Cycle, payload: T) {
        assert!(
            channel < self.channels.len(),
            "channel {channel} out of range"
        );
        assert!(bytes > 0, "zero-byte DRAM transfer");
        let burst = bytes.max(self.config.min_burst_bytes);
        let transfer = (burst as f64 / self.config.bytes_per_cycle).ceil() as Cycle;
        let mut start = self.channels[channel].busy_until.max(now);
        // Stall windows are sorted by start, so one pass settles chains of
        // overlapping windows.
        for &(c, from, to) in &self.stalls {
            if c == channel && start >= from && start < to {
                start = to;
                self.stalled_requests += 1;
            }
        }
        let ch = &mut self.channels[channel];
        let done = start + self.config.base_latency + transfer.max(1);
        ch.busy_until = start + transfer.max(1);
        ch.busy_cycles += transfer.max(1);
        ch.bytes_served += bytes;
        if let Some(bufs) = self.trace.as_mut() {
            bufs[channel].emit(
                start,
                EventKind::DramBurst {
                    bytes,
                    duration: transfer.max(1),
                },
            );
        }
        self.queue_delay.record((start - now) as f64);
        self.latency.record((done - now) as f64);
        self.completions.schedule(done, payload);
    }

    /// Returns payloads whose transfers completed at or before `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(p) = self.completions.pop_due(now) {
            out.push(p);
        }
        out
    }

    /// Whether transfers are still in flight.
    pub fn is_idle(&self) -> bool {
        self.completions.is_empty()
    }

    /// Event horizon: the earliest in-flight completion, if any. All
    /// counters are updated at enqueue time and an idle `tick` mutates
    /// nothing, so skipped cycles need no compensation.
    pub fn next_event(&self) -> Option<Cycle> {
        self.completions.next_due()
    }

    /// Total bytes served across channels.
    pub fn bytes_served(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes_served).sum()
    }

    /// Total channel-busy cycles across channels (cumulative counter; the
    /// windowed-metrics recorder diffs it into per-window utilization).
    pub fn busy_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.busy_cycles).sum()
    }

    /// Mean end-to-end request latency (cycles).
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Mean cycles requests waited behind earlier transfers.
    pub fn mean_queue_delay(&self) -> f64 {
        self.queue_delay.mean()
    }

    /// Bandwidth utilization over `elapsed` cycles: busy cycles / (elapsed
    /// × channels).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let busy: u64 = self.channels.iter().map(|c| c.busy_cycles).sum();
        busy as f64 / (elapsed as f64 * self.channels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram<u32> {
        Dram::new(DramConfig {
            channels: 2,
            base_latency: 10,
            bytes_per_cycle: 8.0,
            min_burst_bytes: 1,
        })
    }

    #[test]
    fn completion_time_includes_latency_and_transfer() {
        let mut d = dram();
        d.enqueue(0, 64, 0, 1); // transfer = 8 cycles, done at 18
        assert!(d.tick(17).is_empty());
        assert_eq!(d.tick(18), vec![1]);
        assert!(d.is_idle());
    }

    #[test]
    fn horizon_is_earliest_completion() {
        let mut d = dram();
        assert_eq!(d.next_event(), None);
        d.enqueue(0, 64, 0, 1); // done at 18
        d.enqueue(1, 32, 0, 2); // transfer = 4 cycles, done at 14
        assert_eq!(d.next_event(), Some(14));
        let _ = d.tick(14);
        assert_eq!(d.next_event(), Some(18));
        let _ = d.tick(18);
        assert_eq!(d.next_event(), None);
    }

    #[test]
    fn same_channel_serializes_bandwidth() {
        let mut d = dram();
        d.enqueue(0, 64, 0, 1); // busy 0..8, done 18
        d.enqueue(0, 64, 0, 2); // starts at 8, done 26
        let mut done = Vec::new();
        for now in 0..=30 {
            for p in d.tick(now) {
                done.push((now, p));
            }
        }
        assert_eq!(done, vec![(18, 1), (26, 2)]);
        assert!(d.mean_queue_delay() > 0.0);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = dram();
        d.enqueue(0, 64, 0, 1);
        d.enqueue(1, 64, 0, 2);
        let mut done = Vec::new();
        for now in 0..=30 {
            for p in d.tick(now) {
                done.push((now, p));
            }
        }
        assert_eq!(done, vec![(18, 1), (18, 2)]);
    }

    #[test]
    fn min_burst_charges_small_requests_a_full_burst() {
        let mut d = Dram::new(DramConfig {
            channels: 1,
            base_latency: 10,
            bytes_per_cycle: 8.0,
            min_burst_bytes: 64,
        });
        // A 2-byte request still occupies 64 B / 8 B-per-cycle = 8 cycles.
        d.enqueue(0, 2, 0, 1u32);
        d.enqueue(0, 2, 0, 2);
        let mut done = Vec::new();
        for now in 0..40 {
            for p in d.tick(now) {
                done.push((now, p));
            }
        }
        assert_eq!(done, vec![(18, 1), (26, 2)]);
    }

    #[test]
    fn one_batched_burst_beats_many_small_requests() {
        // 8 × 8-byte requests vs one 64-byte batch on one channel.
        let mut small = dram();
        for i in 0..8 {
            small.enqueue(0, 8, 0, i);
        }
        let mut last_small = 0;
        for now in 0..100 {
            if !small.tick(now).is_empty() {
                last_small = now;
            }
        }
        let mut batched = dram();
        batched.enqueue(0, 64, 0, 0);
        let mut last_batch = 0;
        for now in 0..100 {
            if !batched.tick(now).is_empty() {
                last_batch = now;
            }
        }
        assert!(
            last_batch <= last_small,
            "batch {last_batch} vs small {last_small}"
        );
    }

    #[test]
    fn utilization_and_bytes_track() {
        let mut d = dram();
        d.enqueue(0, 80, 0, 1); // 10 busy cycles on channel 0
        let _ = d.tick(100);
        assert_eq!(d.bytes_served(), 80);
        assert!((d.utilization(100) - 10.0 / 200.0).abs() < 1e-12);
        assert_eq!(d.utilization(0), 0.0);
    }

    #[test]
    fn mean_latency_reported() {
        let mut d = dram();
        d.enqueue(0, 8, 0, 1); // done at 11 → latency 11
        let _ = d.tick(20);
        assert!((d.mean_latency() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn stall_window_delays_service() {
        let mut d = dram();
        d.stall_channel(0, 0, 50);
        d.enqueue(0, 64, 0, 1); // starts at 50, transfer 8 → done 68
        d.enqueue(1, 64, 0, 2); // other channel unaffected → done 18
        assert!(d.tick(17).is_empty());
        assert_eq!(d.tick(18), vec![2]);
        assert_eq!(d.tick(68), vec![1]);
        assert_eq!(d.stalled_requests(), 1);
        // After the window, the channel serves normally.
        d.enqueue(0, 64, 100, 3);
        assert_eq!(d.tick(118), vec![3]);
        assert_eq!(d.stalled_requests(), 1);
    }

    #[test]
    fn overlapping_stalls_chain() {
        let mut d = dram();
        d.stall_channel(0, 20, 40);
        d.stall_channel(0, 0, 25);
        d.enqueue(0, 8, 0, 1); // pushed 0 → 25 → 40, done 51
        assert_eq!(d.tick(51), vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_channel_rejected() {
        dram().enqueue(9, 8, 0, 1);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_rejected() {
        dram().enqueue(0, 0, 0, 1);
    }
}
