//! The unified address space (§3.5.1: SPM is "initialized of unified
//! addressing with main memory").
//!
//! Layout:
//!
//! ```text
//! 0x0000_0000_0000 .. DRAM_BYTES                  main memory (DDR4)
//! SPM_BASE + core*SPM_BYTES .. +SPM_BYTES         core's scratchpad window
//!   (top SPM_CTRL_BYTES of each window are DMA control registers)
//! ```
//!
//! LSQ units "check the address and judge whether to send the requirement
//! to the cache or to the SPM" — that check is [`AddressSpace::classify`].

/// Default DRAM capacity: 4 × 16 GB DDR4 (Table 2). Simulated runs touch a
/// small fraction; the constant only bounds the map.
pub const DRAM_BYTES: u64 = 64 << 30;

/// Base of the SPM region in the unified address space.
pub const SPM_BASE: u64 = 0x4000_0000_0000;

/// Per-core scratchpad capacity (§3.1: 128 KB local memory).
pub const SPM_BYTES: u64 = 128 << 10;

/// Top-of-SPM control-register window (§3.5.1: "SPMs spare top 256 bytes
/// space to act as control registers" for DMA source/dest/size).
pub const SPM_CTRL_BYTES: u64 = 256;

/// Where an address lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Main memory, with the owning DDR channel index.
    Dram {
        /// Interleaved DDR channel.
        channel: usize,
    },
    /// A core's scratchpad data region.
    Spm {
        /// Owning core.
        core: usize,
        /// Byte offset within the SPM window.
        offset: u64,
    },
    /// A core's SPM control registers (DMA programming).
    SpmCtrl {
        /// Owning core.
        core: usize,
        /// Register offset within the control window.
        offset: u64,
    },
    /// Outside every mapped region.
    Unmapped,
}

/// Where a byte *range* lands; see [`AddressSpace::classify_range`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeClass {
    /// The whole range lies inside one region (the region of its first
    /// byte; for DRAM the channel is the first byte's channel — a range
    /// may still span interleave boundaries).
    Within(Region),
    /// The range starts and ends in different regions (or different
    /// cores' SPM windows) — two agents would service it.
    Straddles {
        /// Region of the first byte.
        first: Region,
        /// Region of the last byte.
        end: Region,
    },
    /// Both ends fall outside every mapped region.
    Unmapped,
}

/// Address-space geometry: core count and DDR channel count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    cores: usize,
    channels: usize,
    /// DDR interleave granularity in bytes.
    interleave: u64,
}

impl AddressSpace {
    /// SmarCo defaults: 256 cores, 4 DDR channels, 4 KB interleave.
    pub fn smarco() -> Self {
        Self::new(256, 4)
    }

    /// Creates a map for `cores` cores and `channels` DDR channels.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(cores: usize, channels: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(channels > 0, "need at least one DDR channel");
        Self {
            cores,
            channels,
            interleave: 4096,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of DDR channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Base address of `core`'s SPM window.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn spm_base(&self, core: usize) -> u64 {
        assert!(core < self.cores, "core {core} out of range");
        SPM_BASE + core as u64 * SPM_BYTES
    }

    /// Classifies an address.
    pub fn classify(&self, addr: u64) -> Region {
        if addr < DRAM_BYTES {
            return Region::Dram {
                channel: ((addr / self.interleave) % self.channels as u64) as usize,
            };
        }
        if addr >= SPM_BASE {
            let rel = addr - SPM_BASE;
            let core = (rel / SPM_BYTES) as usize;
            if core < self.cores {
                let offset = rel % SPM_BYTES;
                let data_bytes = SPM_BYTES - SPM_CTRL_BYTES;
                return if offset < data_bytes {
                    Region::Spm { core, offset }
                } else {
                    Region::SpmCtrl {
                        core,
                        offset: offset - data_bytes,
                    }
                };
            }
        }
        Region::Unmapped
    }

    /// Classifies a byte *range* `[addr, addr + bytes)`.
    ///
    /// Static analyses (the `smarco-lint` address-map pass) need to know
    /// not just where a range starts but whether it stays inside one
    /// region: an access that straddles a region boundary is serviced by
    /// two different agents and is almost certainly a bug.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or the range overflows the address space.
    pub fn classify_range(&self, addr: u64, bytes: u64) -> RangeClass {
        assert!(bytes > 0, "zero-length range");
        let last = addr
            .checked_add(bytes - 1)
            .expect("range overflows the address space");
        let first = self.classify(addr);
        let end = self.classify(last);
        match (first, end) {
            (Region::Unmapped, Region::Unmapped) => RangeClass::Unmapped,
            (Region::Unmapped, _) | (_, Region::Unmapped) => RangeClass::Straddles { first, end },
            (Region::Dram { .. }, Region::Dram { .. }) => RangeClass::Within(first),
            (Region::Spm { core: a, .. }, Region::Spm { core: b, .. }) if a == b => {
                RangeClass::Within(first)
            }
            (Region::SpmCtrl { core: a, .. }, Region::SpmCtrl { core: b, .. }) if a == b => {
                RangeClass::Within(first)
            }
            _ => RangeClass::Straddles { first, end },
        }
    }

    /// Whether `addr` is scratchpad space (data or control) of any core.
    pub fn is_spm(&self, addr: u64) -> bool {
        matches!(
            self.classify(addr),
            Region::Spm { .. } | Region::SpmCtrl { .. }
        )
    }

    /// DDR channel owning a DRAM address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a DRAM address.
    pub fn dram_channel(&self, addr: u64) -> usize {
        match self.classify(addr) {
            Region::Dram { channel } => channel,
            other => panic!("address {addr:#x} is not DRAM ({other:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_addresses_classify_and_interleave() {
        let a = AddressSpace::new(4, 4);
        assert_eq!(a.classify(0), Region::Dram { channel: 0 });
        assert_eq!(a.classify(4096), Region::Dram { channel: 1 });
        assert_eq!(a.classify(4096 * 5), Region::Dram { channel: 1 });
        assert_eq!(a.dram_channel(4096 * 2 + 17), 2);
    }

    #[test]
    fn spm_windows_belong_to_cores() {
        let a = AddressSpace::new(8, 4);
        let base = a.spm_base(3);
        assert_eq!(a.classify(base), Region::Spm { core: 3, offset: 0 });
        assert_eq!(
            a.classify(base + 100),
            Region::Spm {
                core: 3,
                offset: 100
            }
        );
        assert!(a.is_spm(base));
        assert!(!a.is_spm(0x1000));
    }

    #[test]
    fn control_registers_at_top_of_window() {
        let a = AddressSpace::new(2, 1);
        let base = a.spm_base(1);
        let ctrl_start = base + SPM_BYTES - SPM_CTRL_BYTES;
        assert_eq!(
            a.classify(ctrl_start),
            Region::SpmCtrl { core: 1, offset: 0 }
        );
        assert_eq!(
            a.classify(ctrl_start + 255),
            Region::SpmCtrl {
                core: 1,
                offset: 255
            }
        );
        // One byte below control space is still data.
        assert!(matches!(
            a.classify(ctrl_start - 1),
            Region::Spm { core: 1, .. }
        ));
    }

    #[test]
    fn out_of_range_addresses_unmapped() {
        let a = AddressSpace::new(2, 1);
        let past_last = SPM_BASE + 2 * SPM_BYTES;
        assert_eq!(a.classify(past_last), Region::Unmapped);
        assert_eq!(a.classify(DRAM_BYTES + 1), Region::Unmapped);
    }

    #[test]
    fn smarco_defaults() {
        let a = AddressSpace::smarco();
        assert_eq!(a.cores(), 256);
        assert_eq!(a.channels(), 4);
        // Every core's SPM window classifies back to that core.
        for core in [0usize, 17, 255] {
            assert_eq!(
                a.classify(a.spm_base(core)),
                Region::Spm { core, offset: 0 }
            );
        }
    }

    #[test]
    fn dram_region_first_and_last_byte() {
        let a = AddressSpace::new(2, 2);
        assert!(matches!(a.classify(0), Region::Dram { channel: 0 }));
        assert!(matches!(a.classify(DRAM_BYTES - 1), Region::Dram { .. }));
        assert_eq!(a.classify(DRAM_BYTES), Region::Unmapped);
    }

    #[test]
    fn spm_window_first_and_last_byte_of_every_core() {
        let a = AddressSpace::new(3, 1);
        for core in 0..3 {
            let base = a.spm_base(core);
            assert_eq!(a.classify(base), Region::Spm { core, offset: 0 });
            // Last byte of the window is the last control register.
            assert_eq!(
                a.classify(base + SPM_BYTES - 1),
                Region::SpmCtrl {
                    core,
                    offset: SPM_CTRL_BYTES - 1
                }
            );
            // Last data byte sits just below the control window.
            assert_eq!(
                a.classify(base + SPM_BYTES - SPM_CTRL_BYTES - 1),
                Region::Spm {
                    core,
                    offset: SPM_BYTES - SPM_CTRL_BYTES - 1
                }
            );
        }
        // One byte past the last core's window is unmapped.
        assert_eq!(a.classify(SPM_BASE + 3 * SPM_BYTES), Region::Unmapped);
    }

    #[test]
    fn unmapped_hole_between_dram_and_spm() {
        let a = AddressSpace::new(2, 1);
        assert_eq!(a.classify(DRAM_BYTES), Region::Unmapped);
        assert_eq!(a.classify((DRAM_BYTES + SPM_BASE) / 2), Region::Unmapped);
        assert_eq!(a.classify(SPM_BASE - 1), Region::Unmapped);
        assert!(matches!(a.classify(SPM_BASE), Region::Spm { core: 0, .. }));
    }

    #[test]
    fn range_within_a_single_region() {
        let a = AddressSpace::new(2, 2);
        assert_eq!(
            a.classify_range(64, 64),
            RangeClass::Within(Region::Dram { channel: 0 })
        );
        let base = a.spm_base(1);
        assert_eq!(
            a.classify_range(base, 64),
            RangeClass::Within(Region::Spm { core: 1, offset: 0 })
        );
    }

    #[test]
    fn range_straddling_region_boundaries() {
        let a = AddressSpace::new(2, 1);
        // DRAM running into the unmapped hole.
        assert!(matches!(
            a.classify_range(DRAM_BYTES - 8, 16),
            RangeClass::Straddles {
                first: Region::Dram { .. },
                end: Region::Unmapped
            }
        ));
        // SPM data running into the control window.
        let base = a.spm_base(0);
        assert!(matches!(
            a.classify_range(base + SPM_BYTES - SPM_CTRL_BYTES - 4, 8),
            RangeClass::Straddles {
                first: Region::Spm { core: 0, .. },
                end: Region::SpmCtrl { core: 0, .. }
            }
        ));
        // One core's control window running into the next core's data.
        assert!(matches!(
            a.classify_range(base + SPM_BYTES - 4, 8),
            RangeClass::Straddles {
                first: Region::SpmCtrl { core: 0, .. },
                end: Region::Spm { core: 1, .. }
            }
        ));
        // Hole running into the first SPM window.
        assert!(matches!(
            a.classify_range(SPM_BASE - 2, 4),
            RangeClass::Straddles {
                first: Region::Unmapped,
                end: Region::Spm { core: 0, .. }
            }
        ));
    }

    #[test]
    fn range_fully_unmapped() {
        let a = AddressSpace::new(2, 1);
        assert_eq!(
            a.classify_range(DRAM_BYTES + 4096, 64),
            RangeClass::Unmapped
        );
        assert_eq!(
            a.classify_range(SPM_BASE + 2 * SPM_BYTES, 64),
            RangeClass::Unmapped
        );
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_range_rejected() {
        AddressSpace::new(2, 1).classify_range(0, 0);
    }

    #[test]
    #[should_panic(expected = "not DRAM")]
    fn dram_channel_rejects_spm_address() {
        let a = AddressSpace::new(2, 2);
        a.dram_channel(a.spm_base(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spm_base_bounds_checked() {
        AddressSpace::new(2, 2).spm_base(2);
    }
}
