//! Programmer-managed scratchpad memory (§3.5.1).
//!
//! SPM offers predictable low latency and, versus a cache, no tag overhead:
//! software (or the MapReduce runtime) decides what lives there. We model
//! *residency* at block granularity: a load/store to the SPM window hits if
//! every touched block is resident; otherwise the core sees an SPM miss and
//! data is exchanged with main memory (by DMA or demand fill), exactly the
//! event that triggers an in-pair thread switch.

use smarco_sim::stats::Ratio;

use crate::map::{SPM_BYTES, SPM_CTRL_BYTES};

/// Residency-tracking block size in bytes (64 B: fine enough that a
/// demand-filled word does not spuriously make far neighbours hit).
pub const SPM_BLOCK_BYTES: u64 = 64;

/// One core's scratchpad.
///
/// # Examples
///
/// ```
/// use smarco_mem::Spm;
///
/// let mut spm = Spm::new();
/// assert!(!spm.access(0, 8)); // nothing resident yet
/// spm.make_resident(0, 4096);
/// assert!(spm.access(0, 8));
/// ```
#[derive(Debug, Clone)]
pub struct Spm {
    resident: Vec<bool>,
    stats: SpmStats,
    /// Ranges a static analysis certified as the only ones this SPM's
    /// guests touch; debug builds assert every access stays inside them
    /// (the `smarco-lint` runtime cross-check). Compiled out in release.
    #[cfg(debug_assertions)]
    certified: Option<Vec<(u64, u64)>>,
}

/// SPM access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpmStats {
    /// Accesses by hit/miss.
    pub accesses: Ratio,
    /// Bytes made resident (fills + prefetches).
    pub bytes_filled: u64,
}

impl Default for Spm {
    fn default() -> Self {
        Self::new()
    }
}

impl Spm {
    /// Creates an empty scratchpad of the architectural size (128 KB minus
    /// the control window).
    pub fn new() -> Self {
        let blocks = (Self::data_bytes() / SPM_BLOCK_BYTES) as usize;
        Self {
            resident: vec![false; blocks],
            stats: SpmStats::default(),
            #[cfg(debug_assertions)]
            certified: None,
        }
    }

    /// Usable data capacity in bytes.
    pub fn data_bytes() -> u64 {
        SPM_BYTES - SPM_CTRL_BYTES
    }

    /// Statistics so far.
    pub fn stats(&self) -> SpmStats {
        self.stats
    }

    /// Installs the lint runtime cross-check: in debug builds, every
    /// subsequent [`Spm::access`] must fall inside one of the given
    /// `(offset, bytes)` ranges or the process panics with the offending
    /// access. The ranges are what a static analysis (the `smarco-lint`
    /// address-map pass) certified as this SPM's complete footprint, so a
    /// trip means the linter's model and the execution disagree.
    ///
    /// Release builds compile this to a no-op.
    pub fn certify(&mut self, ranges: &[(u64, u64)]) {
        #[cfg(debug_assertions)]
        {
            self.certified = Some(ranges.to_vec());
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = ranges;
        }
    }

    /// Removes the certified footprint installed by [`Spm::certify`].
    pub fn decertify(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.certified = None;
        }
    }

    #[cfg(debug_assertions)]
    fn check_certified(&self, offset: u64, bytes: u64) {
        if let Some(ranges) = &self.certified {
            let covered = ranges
                .iter()
                .any(|&(start, len)| offset >= start && offset + bytes <= start + len);
            assert!(
                covered,
                "SPM access [{offset:#x}, {:#x}) escapes the statically \
                 certified footprint ({} certified range(s)); the linter's \
                 model and this execution disagree",
                offset + bytes,
                ranges.len(),
            );
        }
    }

    fn block_range(offset: u64, bytes: u64) -> (usize, usize) {
        let first = (offset / SPM_BLOCK_BYTES) as usize;
        let last = ((offset + bytes - 1) / SPM_BLOCK_BYTES) as usize;
        (first, last)
    }

    /// Accesses `bytes` at `offset` in the SPM window, recording the
    /// hit/miss; returns whether all touched blocks were resident.
    ///
    /// # Panics
    ///
    /// Panics if the access overruns the data region or `bytes` is zero.
    pub fn access(&mut self, offset: u64, bytes: u64) -> bool {
        assert!(bytes > 0, "zero-length SPM access");
        assert!(
            offset + bytes <= Self::data_bytes(),
            "SPM access out of bounds"
        );
        #[cfg(debug_assertions)]
        self.check_certified(offset, bytes);
        let (first, last) = Self::block_range(offset, bytes);
        let hit = self.resident[first..=last].iter().all(|&r| r);
        self.stats.accesses.record(hit);
        hit
    }

    /// Residency check without recording statistics.
    pub fn is_resident(&self, offset: u64, bytes: u64) -> bool {
        assert!(bytes > 0, "zero-length SPM probe");
        assert!(
            offset + bytes <= Self::data_bytes(),
            "SPM probe out of bounds"
        );
        let (first, last) = Self::block_range(offset, bytes);
        self.resident[first..=last].iter().all(|&r| r)
    }

    /// Marks `[offset, offset + bytes)` resident (demand fill, DMA arrival
    /// or instruction-segment prefetch).
    ///
    /// # Panics
    ///
    /// Panics if the range overruns the data region or `bytes` is zero.
    pub fn make_resident(&mut self, offset: u64, bytes: u64) {
        assert!(bytes > 0, "zero-length SPM fill");
        assert!(
            offset + bytes <= Self::data_bytes(),
            "SPM fill out of bounds"
        );
        let (first, last) = Self::block_range(offset, bytes);
        for b in &mut self.resident[first..=last] {
            *b = true;
        }
        self.stats.bytes_filled += bytes;
    }

    /// Marks `[offset, offset + bytes)` non-resident (data returned to
    /// memory to make room).
    ///
    /// # Panics
    ///
    /// Panics if the range overruns the data region or `bytes` is zero.
    pub fn evict(&mut self, offset: u64, bytes: u64) {
        assert!(bytes > 0, "zero-length SPM evict");
        assert!(
            offset + bytes <= Self::data_bytes(),
            "SPM evict out of bounds"
        );
        let (first, last) = Self::block_range(offset, bytes);
        for b in &mut self.resident[first..=last] {
            *b = false;
        }
    }

    /// Fraction of blocks currently resident.
    pub fn occupancy(&self) -> f64 {
        self.resident.iter().filter(|&&r| r).count() as f64 / self.resident.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_make_accesses_hit() {
        let mut s = Spm::new();
        assert!(!s.access(1000, 4));
        s.make_resident(512, 1024);
        assert!(s.access(1000, 4));
        assert!(s.is_resident(512, 1024));
        assert!(!s.is_resident(0, 4));
    }

    #[test]
    fn straddling_access_needs_both_blocks() {
        let mut s = Spm::new();
        s.make_resident(0, SPM_BLOCK_BYTES); // block 0 only
        assert!(s.access(SPM_BLOCK_BYTES - 4, 4)); // entirely in block 0
        assert!(!s.access(SPM_BLOCK_BYTES - 4, 8)); // straddles into block 1
        s.make_resident(SPM_BLOCK_BYTES, 1);
        assert!(s.access(SPM_BLOCK_BYTES - 4, 8));
    }

    #[test]
    fn evict_clears_residency() {
        let mut s = Spm::new();
        s.make_resident(0, 4096);
        s.evict(0, 4096);
        assert!(!s.access(0, 4));
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn occupancy_tracks_blocks() {
        let mut s = Spm::new();
        assert_eq!(s.occupancy(), 0.0);
        s.make_resident(0, Spm::data_bytes());
        assert_eq!(s.occupancy(), 1.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Spm::new();
        s.access(0, 4);
        s.make_resident(0, 256);
        s.access(0, 4);
        assert_eq!(s.stats().accesses.total(), 2);
        assert_eq!(s.stats().accesses.hits(), 1);
        assert_eq!(s.stats().bytes_filled, 256);
    }

    #[test]
    fn data_capacity_excludes_control_window() {
        assert_eq!(Spm::data_bytes(), (128 << 10) - 256);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_rejected() {
        Spm::new().access(Spm::data_bytes(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_access_rejected() {
        Spm::new().access(0, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn certified_footprint_admits_covered_accesses() {
        let mut s = Spm::new();
        s.certify(&[(0, 4096), (8192, 1024)]);
        s.access(0, 64);
        s.access(4088, 8); // last bytes of the first range
        s.access(8192, 1024);
        s.decertify();
        s.access(100_000, 4); // no footprint installed: anything goes
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "escapes the statically certified footprint")]
    fn certified_footprint_rejects_escaping_access() {
        let mut s = Spm::new();
        s.certify(&[(0, 4096)]);
        s.access(4092, 8); // straddles the certified boundary
    }
}
