//! Set-associative LRU cache model.
//!
//! One model serves SmarCo's 16 KB L1 I/D caches and the conventional
//! baseline's L2/LLC (Fig. 1c/d). Timing is owned by the caller; the cache
//! tracks hits/misses/evictions and exposes its miss ratio.

use smarco_sim::stats::Ratio;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// SmarCo L1 (16 KB, 64 B lines, 4-way; §3.1).
    pub fn smarco_l1() -> Self {
        Self {
            size_bytes: 16 << 10,
            line_bytes: 64,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// Set counts need not be powers of two (indexing is modulo); real
    /// LLCs (60 MB, 20-way) are not.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes or capacity not
    /// a multiple of `line_bytes * ways`).
    pub fn sets(&self) -> usize {
        assert!(
            self.size_bytes > 0 && self.line_bytes > 0 && self.ways > 0,
            "zero geometry"
        );
        let per_way = self.size_bytes / self.line_bytes;
        assert_eq!(
            self.size_bytes % (self.line_bytes * self.ways as u64),
            0,
            "capacity must divide evenly into ways of lines"
        );
        (per_way / self.ways as u64) as usize
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; it was filled (LRU victim evicted). `writeback_of`
    /// carries the dirty victim's line address when one must be written
    /// back to memory.
    Miss {
        /// Dirty victim line address needing writeback, if any.
        writeback_of: Option<u64>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative write-back, write-allocate cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use smarco_mem::cache::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::smarco_l1());
/// assert!(!l1.access(0x1000, false).is_hit()); // cold miss
/// assert!(l1.access(0x1000, false).is_hit());  // now resident
/// assert!(l1.access(0x103f, false).is_hit());  // same 64B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

/// Hit/miss/eviction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses by hit/miss.
    pub accesses: Ratio,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses so far.
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.accesses.ratio()
    }
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let line = Line {
            tag: 0,
            valid: false,
            dirty: false,
            lru: 0,
        };
        Self {
            config,
            sets: vec![vec![line; config.ways]; sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.config.line_bytes;
        let set = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        (set, tag)
    }

    /// Line-aligned address of the line containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr - addr % self.config.line_bytes
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate) and
    /// the LRU victim evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.index(addr);
        let sets_count = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= is_write;
            self.stats.accesses.record(true);
            return CacheOutcome::Hit;
        }
        self.stats.accesses.record(false);
        // Choose victim: invalid line first, else LRU.
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("ways > 0")
        });
        let victim = set[victim_idx];
        let writeback_of = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some((victim.tag * sets_count + set_idx as u64) * self.config.line_bytes)
        } else {
            None
        };
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.clock,
        };
        CacheOutcome::Miss { writeback_of }
    }

    /// Write without allocation (streaming/non-temporal store): a hit
    /// updates the line (dirty); a miss leaves the cache untouched so the
    /// write drains downstream at its own granularity. Returns whether it
    /// hit.
    pub fn write_no_allocate(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.index(addr);
        let clock = self.clock;
        if let Some(line) = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.lru = clock;
            line.dirty = true;
            self.stats.accesses.record(true);
            true
        } else {
            self.stats.accesses.record(false);
            false
        }
    }

    /// Checks residency without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line (e.g. on task switch in the baseline model).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.dirty = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(63, false).is_hit());
        assert!(!c.access(64, false).is_hit());
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Same set (4 sets × 64 B ⇒ set stride 256 B): addresses 0, 256, 512.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh 0 → victim is 256
        c.access(512, false); // evicts 256
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0, true);
        c.access(256, false);
        let out = c.access(512, false); // victim 0 is dirty
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback_of: Some(0)
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        assert_eq!(
            c.access(512, false),
            CacheOutcome::Miss { writeback_of: None }
        );
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // hit, makes dirty
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                writeback_of: Some(0)
            }
        );
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = tiny();
        c.access(0, false); // miss
        c.access(0, false); // hit
        c.access(0, false); // hit
        c.access(64, false); // miss
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0, true);
        c.flush();
        assert!(!c.probe(0));
        // Flushed dirty line does not report a writeback on next fill.
        assert_eq!(
            c.access(0, false),
            CacheOutcome::Miss { writeback_of: None }
        );
    }

    #[test]
    fn smarco_l1_geometry() {
        let c = Cache::new(CacheConfig::smarco_l1());
        assert_eq!(c.config().sets(), 64);
        assert_eq!(c.line_addr(0x1234), 0x1200);
    }

    #[test]
    fn non_power_of_two_sets_supported() {
        // 3 sets × 1 way — odd geometries (like a 20-way 60 MB LLC) work.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 192,
            line_bytes: 64,
            ways: 1,
        });
        assert_eq!(c.config().sets(), 3);
        for addr in [0u64, 64, 128] {
            assert!(!c.access(addr, false).is_hit());
        }
        for addr in [0u64, 64, 128] {
            assert!(c.access(addr, false).is_hit());
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // Stream over 4 KB (8× capacity): essentially all misses after warmup.
        for round in 0..4 {
            for addr in (0..4096u64).step_by(64) {
                c.access(addr, false);
            }
            let _ = round;
        }
        assert!(c.stats().miss_ratio() > 0.95);
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let mut c = tiny();
        for _ in 0..16 {
            for addr in (0..256u64).step_by(64) {
                c.access(addr, false);
            }
        }
        assert!(c.stats().miss_ratio() < 0.1);
    }
}
