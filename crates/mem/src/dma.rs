//! SPM DMA engine (§3.5.1).
//!
//! SPMs transfer data among themselves and with main memory by DMA so that
//! cores keep computing during the copy. Each core owns one engine; the
//! runtime programs it through the SPM control registers (source,
//! destination, size), modelled here as a queue of transfers drained at a
//! fixed rate.

use std::collections::VecDeque;

use smarco_sim::stats::Counter;
use smarco_sim::Cycle;

/// DMA engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Copy bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Fixed start-up cost per transfer (programming + arbitration).
    pub setup_cycles: Cycle,
}

impl Default for DmaConfig {
    fn default() -> Self {
        // Two 64-bit sub-ring lanes sustained, modest setup.
        Self {
            bytes_per_cycle: 16.0,
            setup_cycles: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct Transfer<T> {
    remaining: f64,
    payload: T,
    setup_left: Cycle,
}

/// A per-core DMA engine; completed transfers return their payload.
///
/// # Examples
///
/// ```
/// use smarco_mem::dma::{Dma, DmaConfig};
///
/// let mut dma: Dma<&str> = Dma::new(DmaConfig { bytes_per_cycle: 8.0, setup_cycles: 2 });
/// dma.start(64, "iseg prefetch");
/// let mut done = Vec::new();
/// for _ in 0..10 {
///     done.extend(dma.tick());
/// }
/// assert_eq!(done, vec!["iseg prefetch"]); // 2 setup + 8 copy cycles
/// ```
#[derive(Debug, Clone)]
pub struct Dma<T> {
    config: DmaConfig,
    queue: VecDeque<Transfer<T>>,
    completed: Counter,
    bytes_copied: u64,
}

impl<T> Dma<T> {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is non-positive.
    pub fn new(config: DmaConfig) -> Self {
        assert!(
            config.bytes_per_cycle > 0.0,
            "DMA bandwidth must be positive"
        );
        Self {
            config,
            queue: VecDeque::new(),
            completed: Counter::new(),
            bytes_copied: 0,
        }
    }

    /// Queues a transfer of `bytes`; `payload` comes back from
    /// [`tick`](Self::tick) on completion. Transfers run one at a time in
    /// FIFO order.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn start(&mut self, bytes: u64, payload: T) {
        assert!(bytes > 0, "zero-byte DMA transfer");
        self.bytes_copied += bytes;
        self.queue.push_back(Transfer {
            remaining: bytes as f64,
            payload,
            setup_left: self.config.setup_cycles,
        });
    }

    /// Advances one cycle; returns payloads of transfers that finished.
    pub fn tick(&mut self) -> Vec<T> {
        let mut done = Vec::new();
        if let Some(front) = self.queue.front_mut() {
            if front.setup_left > 0 {
                front.setup_left -= 1;
            } else {
                front.remaining -= self.config.bytes_per_cycle;
                if front.remaining <= 0.0 {
                    let t = self.queue.pop_front().expect("front exists");
                    self.completed.inc();
                    done.push(t.payload);
                }
            }
        }
        done
    }

    /// Whether transfers are pending or in flight.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Transfers completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    /// Total bytes accepted so far.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dma() -> Dma<u32> {
        Dma::new(DmaConfig {
            bytes_per_cycle: 8.0,
            setup_cycles: 2,
        })
    }

    #[test]
    fn transfer_takes_setup_plus_copy_cycles() {
        let mut d = dma();
        d.start(64, 7);
        let mut cycles = 0;
        loop {
            cycles += 1;
            if !d.tick().is_empty() {
                break;
            }
            assert!(cycles < 100, "transfer never completed");
        }
        assert_eq!(cycles, 2 + 8);
        assert!(!d.is_busy());
    }

    #[test]
    fn transfers_are_fifo_and_serialized() {
        let mut d = dma();
        d.start(8, 1);
        d.start(8, 2);
        let mut order = Vec::new();
        for _ in 0..20 {
            order.extend(d.tick());
        }
        assert_eq!(order, vec![1, 2]);
        assert_eq!(d.completed(), 2);
        assert_eq!(d.bytes_copied(), 16);
    }

    #[test]
    fn idle_engine_ticks_empty() {
        let mut d = dma();
        assert!(d.tick().is_empty());
        assert!(!d.is_busy());
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_rejected() {
        dma().start(0, 1);
    }
}
