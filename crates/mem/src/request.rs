//! Request/response types flowing between cores, MACT, NoC and DRAM.

use smarco_isa::MemRef;
use smarco_sim::Cycle;

/// Unique identifier of an in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// Raw value (for logging).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Allocates unique [`RequestId`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestIdAllocator(u64);

impl RequestIdAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn next_id(&mut self) -> RequestId {
        let id = RequestId(self.0);
        self.0 += 1;
        id
    }
}

/// A memory request as seen by the uncore (MACT, NoC, DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Unique id used to match the response.
    pub id: RequestId,
    /// Issuing core.
    pub core: usize,
    /// Address, width and priority.
    pub mem: MemRef,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Cycle the core issued it (for end-to-end latency stats).
    pub issued_at: Cycle,
}

impl MemRequest {
    /// Whether this request may be collected by the MACT (§3.4: requests
    /// "marked of superior real-time priority" bypass the table).
    pub fn mact_eligible(&self) -> bool {
        self.mem.priority == smarco_isa::Priority::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::MemRef;

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut alloc = RequestIdAllocator::new();
        let a = alloc.next_id();
        let b = alloc.next_id();
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
    }

    #[test]
    fn realtime_requests_bypass_mact() {
        let mut alloc = RequestIdAllocator::new();
        let normal = MemRequest {
            id: alloc.next_id(),
            core: 0,
            mem: MemRef::new(64, 4),
            is_write: false,
            issued_at: 0,
        };
        let rt = MemRequest {
            mem: MemRef::realtime(64, 4),
            ..normal
        };
        assert!(normal.mact_eligible());
        assert!(!rt.mact_eligible());
    }
}
