//! Request/response types flowing between cores, MACT, NoC and DRAM.

use smarco_isa::MemRef;
use smarco_sim::Cycle;

/// Unique identifier of an in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// Raw value (for logging).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Allocates unique [`RequestId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestIdAllocator {
    next: u64,
    stride: u64,
}

impl Default for RequestIdAllocator {
    fn default() -> Self {
        Self { next: 0, stride: 1 }
    }
}

impl RequestIdAllocator {
    /// Creates an allocator starting at id 0 with stride 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an allocator yielding `start`, `start + stride`,
    /// `start + 2·stride`, … — allocators with the same stride and distinct
    /// `start < stride` partition the id space, so independent shards can
    /// allocate without coordinating.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or `start` is not below `stride`.
    pub fn strided(start: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            start < stride,
            "start {start} must be below stride {stride}"
        );
        Self {
            next: start,
            stride,
        }
    }

    /// Returns a fresh id.
    pub fn next_id(&mut self) -> RequestId {
        let id = RequestId(self.next);
        self.next += self.stride;
        id
    }
}

/// A memory request as seen by the uncore (MACT, NoC, DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Unique id used to match the response.
    pub id: RequestId,
    /// Issuing core.
    pub core: usize,
    /// Address, width and priority.
    pub mem: MemRef,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Cycle the core issued it (for end-to-end latency stats).
    pub issued_at: Cycle,
}

impl MemRequest {
    /// Whether this request may be collected by the MACT (§3.4: requests
    /// "marked of superior real-time priority" bypass the table).
    pub fn mact_eligible(&self) -> bool {
        self.mem.priority == smarco_isa::Priority::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::MemRef;

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut alloc = RequestIdAllocator::new();
        let a = alloc.next_id();
        let b = alloc.next_id();
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
    }

    #[test]
    fn strided_allocators_partition_the_id_space() {
        let mut a = RequestIdAllocator::strided(0, 3);
        let mut b = RequestIdAllocator::strided(1, 3);
        let mut c = RequestIdAllocator::strided(2, 3);
        let mut seen: Vec<u64> = Vec::new();
        for _ in 0..4 {
            seen.push(a.next_id().raw());
            seen.push(b.next_id().raw());
            seen.push(c.next_id().raw());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below stride")]
    fn strided_start_must_fit() {
        let _ = RequestIdAllocator::strided(3, 3);
    }

    #[test]
    fn realtime_requests_bypass_mact() {
        let mut alloc = RequestIdAllocator::new();
        let normal = MemRequest {
            id: alloc.next_id(),
            core: 0,
            mem: MemRef::new(64, 4),
            is_write: false,
            issued_at: 0,
        };
        let rt = MemRequest {
            mem: MemRef::realtime(64, 4),
            ..normal
        };
        assert!(normal.mact_eligible());
        assert!(!rt.mact_eligible());
    }
}
