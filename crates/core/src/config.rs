//! Core and chip configurations.

use crate::fault::FaultPlan;
use smarco_mem::cache::CacheConfig;
use smarco_mem::dram::DramConfig;
use smarco_mem::mact::MactConfig;
use smarco_noc::direct::DirectPathConfig;
use smarco_noc::NocConfig;
use smarco_sim::obs::ObsConfig;
use smarco_sim::Cycle;

pub use smarco_sim::prof::ProfConfig;

/// Thread Core Group parameters (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcgConfig {
    /// Resident threads per core (8): must be at most `2 × pairs`.
    pub resident_threads: usize,
    /// Thread pairs = concurrently running threads (4). The issue width
    /// equals the pair count: each running thread owns a dispatcher/ALU/AGU
    /// slice (Fig. 5), so the core issues up to one instruction per pair
    /// per cycle — a 4-wide in-order superscalar.
    pub pairs: usize,
    /// Front-end refill penalty of the 8-stage pipeline on a branch
    /// mispredict.
    pub pipeline_depth: Cycle,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Cycles an SPM hit occupies a thread (predictable, faster than
    /// cache).
    pub spm_latency: Cycle,
    /// Cycles a D-cache hit occupies a thread.
    pub cache_hit_latency: Cycle,
    /// Fixed I-cache miss penalty (front-end refill from the next level).
    pub icache_miss_penalty: Cycle,
    /// Enable the in-pair friend-switch mechanism. When off, a blocked
    /// thread simply stalls its pair (coarse-grained ablation).
    pub in_pair: bool,
    /// Enable shared-instruction-segment SPM prefetch (§3.1.2).
    pub shared_iseg: bool,
}

impl TcgConfig {
    /// The paper's TCG: 8 resident threads in 4 pairs, 4-wide issue,
    /// 8-stage pipeline, 16 KB L1s.
    pub fn smarco() -> Self {
        Self {
            resident_threads: 8,
            pairs: 4,
            pipeline_depth: 8,
            l1i: CacheConfig::smarco_l1(),
            l1d: CacheConfig::smarco_l1(),
            spm_latency: 1,
            cache_hit_latency: 2,
            icache_miss_penalty: 24,
            in_pair: true,
            shared_iseg: true,
        }
    }

    /// Same core with `n` resident threads (Fig. 17's sweep). Threads 1–4
    /// occupy their own pairs; 5–8 arrive as friends.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `2 × pairs`.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(
            n > 0 && n <= 2 * self.pairs,
            "thread count {n} out of range"
        );
        self.resident_threads = n;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero pairs/threads or more threads than `2 × pairs`.
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }

    /// Non-panicking validation, used by the chip builder.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found, as a human-readable string.
    pub fn check(&self) -> Result<(), String> {
        if self.pairs == 0 {
            return Err("need at least one pair".into());
        }
        if self.resident_threads == 0 || self.resident_threads > 2 * self.pairs {
            return Err("resident threads must be 1..=2*pairs".into());
        }
        if self.spm_latency == 0 || self.cache_hit_latency == 0 {
            return Err("latencies must be positive".into());
        }
        if self.pipeline_depth == 0 {
            return Err("pipeline depth must be positive".into());
        }
        Ok(())
    }
}

/// Whole-chip configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SmarcoConfig {
    /// Topology (rings, cores, controllers).
    pub noc: NocConfig,
    /// Per-core TCG parameters.
    pub tcg: TcgConfig,
    /// MACT per sub-ring; `None` disables collection (the Fig. 20
    /// "conventional structure" baseline).
    pub mact: Option<MactConfig>,
    /// DDR controller model.
    pub dram: DramConfig,
    /// Direct datapath; `None` routes real-time requests over the rings.
    pub direct: Option<DirectPathConfig>,
    /// Core clock in GHz (1.5 for SmarCo) — used only when converting
    /// cycles to wall-clock/energy.
    pub freq_ghz: f64,
    /// Observability layer (tracing + windowed metrics). Default-off:
    /// results are bit-identical to an uninstrumented run.
    pub obs: ObsConfig,
    /// Host-side self-profiling of the PDES engine (per-shard wall-clock
    /// phase buckets and window telemetry). Default-off and, like `obs`,
    /// result-neutral: a profiled run's report is bit-identical to an
    /// unprofiled one.
    pub prof: ProfConfig,
    /// Host threads driving the chip's shards on the PDES engine. `1`
    /// (the default) simulates in-process; any value yields bit-identical
    /// results.
    pub workers: usize,
    /// Event-horizon cycle skipping: quiescent shards fast-forward past
    /// idle stretches instead of stepping them cycle by cycle. Results are
    /// bit-identical either way (the off switch exists for debugging and
    /// for the determinism suite's cross-checks).
    pub cycle_skip: bool,
    /// Fault-injection plan; `None` (and the zero plan) model a healthy
    /// chip. Usually set through
    /// [`SmarcoSystemBuilder::fault_plan`](crate::chip::SmarcoSystemBuilder::fault_plan).
    pub fault: Option<FaultPlan>,
}

impl SmarcoConfig {
    /// The full 256-core chip as taped out in Table 2.
    pub fn smarco() -> Self {
        Self {
            noc: NocConfig::smarco(),
            tcg: TcgConfig::smarco(),
            mact: Some(MactConfig::default()),
            dram: DramConfig::smarco(),
            direct: Some(DirectPathConfig::smarco()),
            freq_ghz: 1.5,
            obs: ObsConfig::off(),
            prof: ProfConfig::off(),
            workers: 1,
            cycle_skip: true,
            fault: None,
        }
    }

    /// A small chip for fast tests: 4 sub-rings × 4 cores.
    pub fn tiny() -> Self {
        let noc = NocConfig::tiny();
        Self {
            noc,
            tcg: TcgConfig::smarco(),
            mact: Some(MactConfig::default()),
            dram: DramConfig {
                channels: noc.mem_ctrls,
                ..DramConfig::smarco()
            },
            direct: Some(DirectPathConfig {
                subrings: noc.subrings,
                ..DirectPathConfig::smarco()
            }),
            freq_ghz: 1.5,
            obs: ObsConfig::off(),
            prof: ProfConfig::off(),
            workers: 1,
            cycle_skip: true,
            fault: None,
        }
    }

    /// The 40 nm prototype (§4.4): 256 threads = 32 cores in 4 sub-rings,
    /// lower clock.
    pub fn prototype_40nm() -> Self {
        let noc = NocConfig {
            subrings: 4,
            cores_per_subring: 8,
            mem_ctrls: 2,
            ..NocConfig::smarco()
        };
        Self {
            noc,
            tcg: TcgConfig::smarco(),
            mact: Some(MactConfig::default()),
            dram: DramConfig {
                channels: 2,
                ..DramConfig::smarco()
            },
            direct: Some(DirectPathConfig {
                subrings: 4,
                ..DirectPathConfig::smarco()
            }),
            freq_ghz: 1.0,
            obs: ObsConfig::off(),
            prof: ProfConfig::off(),
            workers: 1,
            cycle_skip: true,
            fault: None,
        }
    }

    /// Total hardware thread capacity.
    pub fn total_threads(&self) -> usize {
        self.noc.cores() * self.tcg.resident_threads
    }

    /// Validates every sub-config.
    ///
    /// # Panics
    ///
    /// Panics if any component configuration is inconsistent.
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }

    /// Non-panicking whole-chip validation: every component config plus
    /// the cross-component invariants and (when present) the fault plan's
    /// geometry. [`SmarcoSystemBuilder::build`](crate::chip::SmarcoSystemBuilder::build)
    /// runs this before constructing any hardware.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found, as a human-readable string.
    pub fn check(&self) -> Result<(), String> {
        self.noc.check()?;
        self.tcg.check()?;
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.workers == 0 {
            return Err("need at least one worker".into());
        }
        if self.prof.enabled && self.prof.sample_every == 0 {
            return Err("profiling sample_every must be positive".into());
        }
        if self.dram.channels != self.noc.mem_ctrls {
            return Err("DRAM channels must match NoC memory controllers".into());
        }
        if let Some(d) = &self.direct {
            if d.subrings != self.noc.subrings {
                return Err("direct spokes must match sub-rings".into());
            }
        }
        if let Some(plan) = &self.fault {
            plan.check_geometry(self.noc.cores(), self.dram.channels, self.noc.subrings)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smarco_matches_table2() {
        let c = SmarcoConfig::smarco();
        c.validate();
        assert_eq!(c.noc.cores(), 256);
        assert_eq!(c.total_threads(), 2048);
        assert_eq!(c.tcg.pairs, 4);
        assert_eq!(c.freq_ghz, 1.5);
    }

    #[test]
    fn prototype_has_256_threads() {
        let c = SmarcoConfig::prototype_40nm();
        c.validate();
        assert_eq!(c.total_threads(), 256);
    }

    #[test]
    fn thread_sweep_configs() {
        for n in 1..=8 {
            let c = TcgConfig::smarco().with_threads(n);
            c.validate();
            assert_eq!(c.resident_threads, n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_threads_rejected() {
        let _ = TcgConfig::smarco().with_threads(9);
    }

    #[test]
    #[should_panic(expected = "channels must match")]
    fn mismatched_dram_rejected() {
        let mut c = SmarcoConfig::tiny();
        c.dram.channels = 9;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sample_every must be positive")]
    fn zero_profiling_stride_rejected() {
        let mut c = SmarcoConfig::tiny();
        c.prof = ProfConfig::on();
        c.prof.sample_every = 0;
        c.validate();
    }

    #[test]
    fn disabled_profiling_stride_is_ignored() {
        let mut c = SmarcoConfig::tiny();
        c.prof.sample_every = 0; // irrelevant while disabled
        c.validate();
    }
}
