//! The full SmarCo chip: cores + hierarchical ring + MACT + direct
//! datapath + DDR (Fig. 4), assembled from PDES shards.
//!
//! Request life cycle (read): a thread's load misses → the core emits a
//! word-granularity request → it rides the sub-ring to the junction →
//! the junction's **MACT** collects it (or it bypasses if real-time /
//! collection is off) → the packed 64-byte batch rides the main ring to
//! its DDR controller → DRAM serves one burst → the batch *reply* rides
//! the main ring back to the junction → per-request replies fan out over
//! the sub-ring → [`crate::tcg::TcgCore::complete`] unblocks the thread,
//! which resumes per the in-pair state machine. Real-time reads can take
//! the star-shaped direct datapath both ways instead (§3.5.2).
//!
//! Internally the chip is a [`ParallelEngine`] over one
//! [`SubShard`] per sub-ring plus one [`HubShard`] (main ring + DDR +
//! main scheduler), exchanging timestamped boundary messages with the
//! junction latency as lookahead. [`SmarcoSystem::run`] drives them with
//! `config.workers` host threads; results are bit-identical for every
//! worker count.

use std::path::PathBuf;

use smarco_mem::map::AddressSpace;
use smarco_sched::Task;
use smarco_sim::engine::CycleModel;
use smarco_sim::obs::{EventTrace, MetricsRecorder, TraceConfig};
use smarco_sim::parallel::ParallelEngine;
use smarco_sim::prof::{ProfConfig, ProfileReport};
use smarco_sim::stats::{MeanTracker, StatsReport};
use smarco_sim::Cycle;

use crate::config::SmarcoConfig;
use crate::error::SmarcoError;
use crate::fault::FaultPlan;
use crate::report::SmarcoReport;
use crate::shard::{ChipMsg, ChipShard, HubShard, SubShard};
use crate::tcg::{CoreFull, TcgCore};

pub use crate::shard::{ChipPayload, UncoreReq};

/// Cycles between completion checks in [`SmarcoSystem::run`]. The check
/// grid is fixed — independent of the observability configuration and the
/// worker count — so every variant of a run stops at the same cycle.
const CHUNK: Cycle = 2048;

/// The assembled chip.
///
/// # Examples
///
/// ```
/// use smarco_core::chip::SmarcoSystem;
/// use smarco_core::config::SmarcoConfig;
/// use smarco_isa::mix::compute_only;
///
/// let mut sys = SmarcoSystem::builder()
///     .config(SmarcoConfig::tiny())
///     .build()?;
/// sys.attach(0, Box::new(compute_only(100)))?;
/// let report = sys.run(100_000);
/// assert_eq!(report.instructions, 101); // 100 computes + Exit
/// # Ok::<(), smarco_core::error::SmarcoError>(())
/// ```
pub struct SmarcoSystem {
    config: SmarcoConfig,
    space: AddressSpace,
    engine: ParallelEngine<ChipShard>,
    /// Host threads driving the shards (from `config.workers`).
    workers: usize,
    next_task: u64,
    /// Chip-wide event trace (ring buffer); shards drain into it at every
    /// synchronization point.
    trace: Option<EventTrace>,
    /// Windowed time-series metrics.
    metrics: Option<MetricsRecorder>,
    /// Where to write the Chrome-trace JSON at end of run.
    trace_path: Option<PathBuf>,
    /// Where to write the per-window CSV at end of run.
    metrics_path: Option<PathBuf>,
    /// Where to write the host-profile JSON at end of run.
    profile_path: Option<PathBuf>,
    /// Host nanoseconds the facade spent draining/flushing observability,
    /// accounted only while self-profiling is enabled (the profiler's
    /// `obs_flush` bucket).
    obs_ns: u64,
}

impl std::fmt::Debug for SmarcoSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmarcoSystem")
            .field("cores", &self.cores_len())
            .field("now", &self.engine.now())
            .field("workers", &self.workers)
            .finish()
    }
}

/// Fluent constructor for [`SmarcoSystem`]: pick a configuration, layer
/// run options on top, and [`build`](Self::build) validates everything at
/// once instead of panicking mid-assembly.
///
/// ```
/// use smarco_core::chip::SmarcoSystem;
/// use smarco_core::config::SmarcoConfig;
/// use smarco_core::fault::FaultPlan;
///
/// let cfg = SmarcoConfig::tiny();
/// let sys = SmarcoSystem::builder()
///     .config(cfg.clone())
///     .fault_plan(FaultPlan::chaos(42, &cfg))
///     .workers(4)
///     .build()?;
/// assert_eq!(sys.cores_len(), 16);
/// # Ok::<(), smarco_core::error::SmarcoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmarcoSystemBuilder {
    config: SmarcoConfig,
    fault: Option<FaultPlan>,
    workers: Option<usize>,
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    profile_path: Option<PathBuf>,
}

impl Default for SmarcoSystemBuilder {
    /// The paper chip ([`SmarcoConfig::smarco`]) with no overrides.
    fn default() -> Self {
        Self {
            config: SmarcoConfig::smarco(),
            fault: None,
            workers: None,
            trace_path: None,
            metrics_path: None,
            profile_path: None,
        }
    }
}

impl SmarcoSystemBuilder {
    /// Uses `config` as the base chip configuration.
    #[must_use]
    pub fn config(mut self, config: SmarcoConfig) -> Self {
        self.config = config;
        self
    }

    /// Injects `plan`'s faults into the run (overrides any plan already
    /// in the configuration).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Drives the shards with `workers` host threads (overrides the
    /// configuration's worker count). Results are bit-identical for every
    /// value.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Writes the Chrome `trace_event` JSON to `path` at end of run
    /// (enables tracing with defaults if the configuration left it off).
    #[must_use]
    pub fn trace_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Writes the per-window metrics CSV to `path` at end of run (enables
    /// sampling with a 10 000-cycle window if the configuration left it
    /// off).
    #[must_use]
    pub fn metrics_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_path = Some(path.into());
        self
    }

    /// Writes the host-profile JSON to `path` at end of run, plus a
    /// folded-stack file and a Chrome trace of host phases next to it
    /// (enables self-profiling with defaults if the configuration left it
    /// off). Profiling never changes simulation results.
    #[must_use]
    pub fn profile_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.profile_path = Some(path.into());
        self
    }

    /// Validates the merged configuration and assembles the chip.
    ///
    /// # Errors
    ///
    /// [`SmarcoError::InvalidConfig`] when the configuration (including
    /// the fault plan's geometry) is inconsistent.
    pub fn build(self) -> Result<SmarcoSystem, SmarcoError> {
        let mut config = self.config;
        if let Some(plan) = self.fault {
            config.fault = Some(plan);
        }
        if let Some(w) = self.workers {
            config.workers = w;
        }
        if let Err(reason) = config.check() {
            return Err(SmarcoError::InvalidConfig { reason });
        }
        let mut sys = SmarcoSystem::assemble(config);
        if let Some(path) = self.trace_path {
            sys.trace_to(path);
        }
        if let Some(path) = self.metrics_path {
            sys.metrics_to(path);
        }
        if let Some(path) = self.profile_path {
            sys.profile_to(path);
        }
        Ok(sys)
    }
}

impl SmarcoSystem {
    /// Starts a [`SmarcoSystemBuilder`] (defaulting to the paper chip).
    pub fn builder() -> SmarcoSystemBuilder {
        SmarcoSystemBuilder::default()
    }

    /// Assembles the shards and engine from an already-validated
    /// configuration.
    fn assemble(config: SmarcoConfig) -> Self {
        let space = AddressSpace::new(config.noc.cores(), config.dram.channels);
        let mut shards: Vec<ChipShard> = (0..config.noc.subrings)
            .map(|sr| ChipShard::Sub(Box::new(SubShard::new(sr, &config, space))))
            .collect();
        shards.push(ChipShard::Hub(Box::new(HubShard::new(&config))));
        let mut engine = ParallelEngine::new(shards, config.noc.boundary_latency());
        engine.set_skip_enabled(config.cycle_skip);
        // Debug builds cross-check every boundary envelope against the
        // statically derived horizon contract (lint code SL0421): same
        // derivation, so a clean lint verdict and a quiet debug run
        // certify the same predicate.
        engine.set_contract(
            crate::contract::horizon_contract(&config),
            ChipMsg::contract_class,
        );
        // Let the contract widen the window beyond the base boundary
        // latency where it can. On today's chip contracts this is a
        // no-op: junction traffic flows between every sub-ring and the
        // hub with exactly `boundary_latency()` delay every cycle, so the
        // minimum reachable floor equals the base lookahead. The call
        // keeps the policy wired end-to-end for configurations whose
        // slowest class floor ever rises above the junction latency.
        engine.widen_from_contract();
        if config.prof.enabled {
            engine.enable_profiling(config.prof);
        }
        let mut sys = Self {
            engine,
            workers: config.workers.max(1),
            space,
            config,
            next_task: 0,
            trace: None,
            metrics: None,
            trace_path: None,
            metrics_path: None,
            profile_path: None,
            obs_ns: 0,
        };
        if let Some(tc) = sys.config.obs.trace {
            sys.enable_tracing(tc);
        }
        if let Some(w) = sys.config.obs.sample_window {
            sys.sample_every(w);
        }
        sys
    }

    fn subs(&self) -> impl Iterator<Item = &SubShard> {
        self.engine.shards().iter().filter_map(ChipShard::as_sub)
    }

    fn sub(&self, sr: usize) -> &SubShard {
        self.engine.shards()[sr].as_sub().expect("sub-ring shard")
    }

    fn sub_mut(&mut self, sr: usize) -> &mut SubShard {
        self.engine.shards_mut()[sr]
            .as_sub_mut()
            .expect("sub-ring shard")
    }

    fn hub(&self) -> &HubShard {
        self.engine
            .shards()
            .last()
            .and_then(ChipShard::as_hub)
            .expect("hub shard")
    }

    fn hub_mut(&mut self) -> &mut HubShard {
        self.engine
            .shards_mut()
            .last_mut()
            .and_then(ChipShard::as_hub_mut)
            .expect("hub shard")
    }

    /// Turns event tracing on across every component. Idempotent beyond
    /// resetting the ring buffer to `cfg.capacity`.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        for shard in self.engine.shards_mut() {
            match shard {
                ChipShard::Sub(s) => s.enable_trace(cfg),
                ChipShard::Hub(h) => h.enable_trace(),
            }
        }
        self.trace = Some(EventTrace::new(cfg.capacity));
        self.config.obs.trace = Some(cfg);
    }

    /// Enables tracing (with defaults, if off) and writes the Chrome
    /// `trace_event` JSON to `path` when the run finishes — load the file
    /// in Perfetto / `chrome://tracing`.
    pub fn trace_to(&mut self, path: impl Into<PathBuf>) {
        if self.trace.is_none() {
            self.enable_tracing(TraceConfig::default());
        }
        self.trace_path = Some(path.into());
    }

    /// Enables windowed metrics sampling every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn sample_every(&mut self, window: Cycle) {
        self.metrics = Some(MetricsRecorder::new(window));
        self.config.obs.sample_window = Some(window);
        for shard in self.engine.shards_mut() {
            if let Some(s) = shard.as_sub_mut() {
                s.collect_latency();
            }
        }
    }

    /// Writes the per-window metrics CSV to `path` when the run finishes
    /// (enables sampling with a 10 000-cycle window if it was off).
    pub fn metrics_to(&mut self, path: impl Into<PathBuf>) {
        if self.metrics.is_none() {
            self.sample_every(10_000);
        }
        self.metrics_path = Some(path.into());
    }

    /// Enables host-side self-profiling (every window sampled unless the
    /// configuration says otherwise). Read-only with respect to the
    /// simulation: results stay bit-identical. Resets any profile
    /// accumulated so far.
    pub fn enable_profiling(&mut self, cfg: ProfConfig) {
        self.engine.enable_profiling(cfg);
        self.config.prof = cfg;
        self.obs_ns = 0;
    }

    /// Enables self-profiling (with defaults, if off) and writes the
    /// host-profile JSON to `path` when the run finishes, plus a
    /// folded-stack file (`.folded`) and a Chrome trace of host phases
    /// (`.trace.json`) alongside it.
    pub fn profile_to(&mut self, path: impl Into<PathBuf>) {
        if !self.config.prof.enabled {
            self.enable_profiling(ProfConfig::on());
        }
        self.profile_path = Some(path.into());
    }

    /// Enables or disables the horizon-contract cross-checker (default:
    /// on). The checker is observation-only — debug builds assert every
    /// boundary envelope against `crate::contract::horizon_contract`,
    /// release builds never evaluate it — so reports are bit-identical
    /// either way; off exists for A/B-verifying exactly that.
    pub fn set_contract_checking(&mut self, enabled: bool) {
        if enabled {
            self.engine.set_contract(
                crate::contract::horizon_contract(&self.config),
                ChipMsg::contract_class,
            );
            self.engine.widen_from_contract();
        } else {
            self.engine.clear_contract();
        }
    }

    /// Snapshot of the host-side profile with chip shard names
    /// (`sub-ring{i}` / `hub`) and the facade's observability time filled
    /// in, when profiling is enabled.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.engine.profile().map(|p| {
            let mut r = p.report();
            r.obs_ns = self.obs_ns;
            r.shard_names = self.engine.shards().iter().map(ChipShard::label).collect();
            r
        })
    }

    /// Writes the profile exports next to `path` (JSON at `path` itself,
    /// folded stacks at `.folded`, host Chrome trace at `.trace.json`).
    /// No-op when profiling is disabled.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the export files.
    pub fn write_profile(&self, path: &std::path::Path) -> std::io::Result<()> {
        let Some(report) = self.profile_report() else {
            return Ok(());
        };
        Self::ensure_parent(path)?;
        report.write_json(path)?;
        report.write_folded(path.with_extension("folded"))?;
        report.write_chrome_json(path.with_extension("trace.json"))?;
        Ok(())
    }

    /// The chip-wide event trace, when tracing is enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// The windowed metrics recorder, when sampling is enabled.
    pub fn metrics(&self) -> Option<&MetricsRecorder> {
        self.metrics.as_ref()
    }

    /// Chip configuration.
    pub fn config(&self) -> &SmarcoConfig {
        &self.config
    }

    /// Shard-cycles executed with per-cycle `step` calls so far.
    pub fn stepped_cycles(&self) -> u64 {
        self.engine.stepped_cycles()
    }

    /// Shard-cycles fast-forwarded by event-horizon skipping so far.
    pub fn skipped_cycles(&self) -> u64 {
        self.engine.skipped_cycles()
    }

    /// Fraction of shard-cycles skipped: `skipped / (stepped + skipped)`.
    pub fn skip_ratio(&self) -> f64 {
        self.engine.skip_ratio()
    }

    /// The unified address space.
    pub fn address_space(&self) -> AddressSpace {
        self.space
    }

    fn core_location(&self, id: usize) -> (usize, usize) {
        let cps = self.config.noc.cores_per_subring;
        (id / cps, id % cps)
    }

    /// Immutable view of core `id`.
    pub fn core(&self, id: usize) -> &TcgCore {
        let (sr, local) = self.core_location(id);
        &self.sub(sr).cores()[local]
    }

    /// Mutable view of core `id` (e.g. to pre-stage SPM data).
    pub fn core_mut(&mut self, id: usize) -> &mut TcgCore {
        let (sr, local) = self.core_location(id);
        &mut self.sub_mut(sr).cores_mut()[local]
    }

    /// Number of cores.
    pub fn cores_len(&self) -> usize {
        self.config.noc.cores()
    }

    /// Per-sub-ring MACT statistics.
    pub fn mact_stats(&self) -> Vec<&smarco_mem::mact::MactStats> {
        self.subs().map(|s| s.mact().stats()).collect()
    }

    /// Submits a task with a deadline to the hardware dispatcher (§3.7):
    /// the main scheduler picks the least-loaded sub-ring, whose
    /// laxity-aware chain table binds it to a TCG thread slot as one
    /// frees up. Returns the task id; exits appear in
    /// [`task_exits`](Self::task_exits).
    pub fn submit_task(
        &mut self,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
        deadline: Cycle,
        work_estimate: Cycle,
        priority: smarco_sched::TaskPriority,
    ) -> u64 {
        let id = self.next_task;
        self.next_task += 1;
        let now = self.engine.now();
        let mut task = Task::new(id, now, deadline, work_estimate.max(1));
        if priority == smarco_sched::TaskPriority::High {
            task = task.with_high_priority();
        }
        let sr = self.hub_mut().assign(&task);
        self.sub_mut(sr).enqueue_task(task, stream, now);
        id
    }

    /// Exit records of hardware-dispatched tasks.
    pub fn task_exits(&self) -> &[crate::dispatch::TaskExit] {
        self.hub().exits()
    }

    /// Attaches a thread stream to a specific core.
    ///
    /// # Errors
    ///
    /// [`SmarcoError::NoSuchCore`] when `core` is outside the chip,
    /// [`SmarcoError::CoreFull`] when it has no vacant slot (a dead,
    /// quarantined core is never vacant). The stream is dropped on
    /// failure; use [`try_attach`](Self::try_attach) to recover it.
    pub fn attach(
        &mut self,
        core: usize,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
    ) -> Result<usize, SmarcoError> {
        if core >= self.cores_len() {
            return Err(SmarcoError::NoSuchCore {
                core,
                cores: self.cores_len(),
            });
        }
        self.try_attach(core, stream)
            .map_err(|_| SmarcoError::CoreFull { core })
    }

    /// Attaches a thread stream to a specific core, handing the stream
    /// back inside the error when the core is full — for callers that
    /// probe several cores with one stream.
    ///
    /// # Errors
    ///
    /// Returns [`CoreFull`] (carrying the stream) when the core has no
    /// vacant slot.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the chip.
    pub fn try_attach(
        &mut self,
        core: usize,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
    ) -> Result<usize, CoreFull> {
        let (sr, local) = self.core_location(core);
        self.sub_mut(sr).attach(local, stream)
    }

    /// Attaches a stream to the first core with a vacant slot.
    ///
    /// # Errors
    ///
    /// [`SmarcoError::NoVacancy`] when the whole chip is saturated,
    /// naming the sub-rings that were probed and full.
    pub fn attach_anywhere(
        &mut self,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
    ) -> Result<(usize, usize), SmarcoError> {
        let mut stream = stream;
        for c in 0..self.cores_len() {
            match self.try_attach(c, stream) {
                Ok(t) => return Ok((c, t)),
                Err(e) => stream = e.into_stream(),
            }
        }
        Err(SmarcoError::NoVacancy {
            tried: (0..self.config.noc.subrings).collect(),
        })
    }

    /// Moves every shard's staged observations into the facade: trace
    /// events (in shard order) and latency samples (into the metrics
    /// recorder). Strictly read-only with respect to the simulation.
    ///
    /// Sits on the per-cycle [`CycleModel::tick`] path, so a disabled
    /// `ObsConfig` must exit on the first test — no shard walk, no
    /// staging allocation.
    fn sync_obs(&mut self) {
        if self.trace.is_none() && self.metrics.is_none() {
            return;
        }
        // Time the drain into the profiler's obs bucket — after the
        // early-out, so disabled observability still reads no clocks.
        let t0 = self.engine.profile().map(|_| std::time::Instant::now());
        if let Some(trace) = self.trace.as_mut() {
            for shard in self.engine.shards_mut() {
                match shard {
                    ChipShard::Sub(s) => s.drain_trace(trace),
                    ChipShard::Hub(h) => h.drain_trace(trace),
                }
            }
        }
        if self.metrics.is_some() {
            let mut samples = Vec::new();
            for shard in self.engine.shards_mut() {
                if let Some(s) = shard.as_sub_mut() {
                    samples.append(&mut s.take_lat_samples());
                }
            }
            if let Some(rec) = self.metrics.as_mut() {
                for v in samples {
                    rec.record_latency(v);
                }
            }
        }
        if let Some(t0) = t0 {
            self.add_obs_ns(t0);
        }
    }

    /// Adds the time elapsed since `t0` to the profiler's obs bucket.
    fn add_obs_ns(&mut self, t0: std::time::Instant) {
        self.obs_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }

    /// Cumulative chip counters for windowed-metrics diffing.
    fn cumulative_counters(&self, now: Cycle) -> StatsReport {
        let mut s = StatsReport::new();
        s.set("cycles", now as f64);
        let mut instructions = 0u64;
        let mut idle_pairs = 0u64;
        let cps = self.config.noc.cores_per_subring;
        for (sr, sub) in self.subs().enumerate() {
            for (local, c) in sub.cores().iter().enumerate() {
                let cs = c.stats();
                instructions += cs.instructions;
                idle_pairs += cs.idle_pair_cycles;
                let i = sr * cps + local;
                s.set(&format!("core{i:02}_instructions"), cs.instructions as f64);
            }
        }
        s.set("instructions", instructions as f64);
        s.set("idle_pair_cycles", idle_pairs as f64);
        s.set(
            "requests",
            self.subs().map(SubShard::requests).sum::<u64>() as f64,
        );
        s.set("dram_requests", self.hub().dram_requests() as f64);
        s.set("dram_bytes", self.hub().dram().bytes_served() as f64);
        s.set("dram_busy_cycles", self.hub().dram().busy_cycles() as f64);
        s.set(
            "mact_collected",
            self.subs()
                .map(|sh| sh.mact().stats().collected.get())
                .sum::<u64>() as f64,
        );
        s.set(
            "mact_batches",
            self.subs()
                .map(|sh| sh.mact().stats().batches.get())
                .sum::<u64>() as f64,
        );
        let (mp, mo) = self.hub().payload_offered_bytes();
        let mut sp = 0u64;
        let mut so = 0u64;
        for sub in self.subs() {
            let (p, o) = sub.payload_offered_bytes();
            sp += p;
            so += o;
        }
        s.set("main_ring_payload_bytes", mp as f64);
        s.set("main_ring_offered_bytes", mo as f64);
        s.set("subring_payload_bytes", sp as f64);
        s.set("subring_offered_bytes", so as f64);
        s
    }

    /// Instantaneous gauges copied into the closing window as-is.
    fn gauges(&self) -> StatsReport {
        let mut g = StatsReport::new();
        g.set(
            "sched_queue_depth",
            self.subs()
                .map(|sh| sh.dispatcher().queued() as u64)
                .sum::<u64>() as f64,
        );
        g.set(
            "sched_in_flight",
            self.subs()
                .map(|sh| sh.dispatcher().in_flight() as u64)
                .sum::<u64>() as f64,
        );
        g.set(
            "mact_open_lines",
            self.subs()
                .map(|sh| sh.mact().open_lines() as u64)
                .sum::<u64>() as f64,
        );
        g.set(
            "outstanding_requests",
            self.subs().map(|sh| sh.outstanding() as u64).sum::<u64>() as f64,
        );
        g
    }

    /// Closes the metrics window ending at `now` and adds derived rates.
    fn close_metrics_window(&mut self, now: Cycle) {
        let t0 = self.engine.profile().map(|_| std::time::Instant::now());
        self.close_metrics_window_inner(now);
        if let Some(t0) = t0 {
            self.add_obs_ns(t0);
        }
    }

    fn close_metrics_window_inner(&mut self, now: Cycle) {
        let cumulative = self.cumulative_counters(now);
        let gauges = self.gauges();
        let pairs = self.config.tcg.pairs as f64;
        let ncores = self.cores_len() as f64;
        let channels = self.config.dram.channels as f64;
        let Some(rec) = self.metrics.as_mut() else {
            return;
        };
        let w = rec.close_window(now, &cumulative, &gauges);
        let dc = w.get("cycles").unwrap_or(0.0);
        if dc > 0.0 {
            let di = w.get("instructions").unwrap_or(0.0);
            w.set("ipc", di / dc);
            for i in 0..ncores as usize {
                let key = format!("core{i:02}_instructions");
                if let Some(ci) = w.get(&key) {
                    w.set(&format!("core{i:02}_ipc"), ci / dc);
                }
            }
            let idle = w.get("idle_pair_cycles").unwrap_or(0.0);
            w.set("idle_ratio", idle / (dc * pairs * ncores));
            w.set(
                "dram_bandwidth_bpc",
                w.get("dram_bytes").unwrap_or(0.0) / dc,
            );
            w.set(
                "dram_utilization",
                w.get("dram_busy_cycles").unwrap_or(0.0) / (dc * channels),
            );
            let batches = w.get("mact_batches").unwrap_or(0.0);
            w.set("mact_batch_rate", batches / dc);
        }
        let so = w.get("subring_offered_bytes").unwrap_or(0.0);
        if so > 0.0 {
            w.set(
                "subring_utilization",
                w.get("subring_payload_bytes").unwrap_or(0.0) / so,
            );
        }
        let mo = w.get("main_ring_offered_bytes").unwrap_or(0.0);
        if mo > 0.0 {
            w.set(
                "main_ring_utilization",
                w.get("main_ring_payload_bytes").unwrap_or(0.0) / mo,
            );
        }
    }

    /// Closes any open partial window and writes the configured trace /
    /// metrics exports.
    ///
    /// Called automatically at the end of [`run`](Self::run); call
    /// directly when driving the chip tick-by-tick.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the export files.
    pub fn flush_observations(&mut self) -> std::io::Result<()> {
        self.sync_obs();
        if self.metrics.is_some() {
            self.close_metrics_window(self.engine.now());
        }
        let t0 = self.engine.profile().map(|_| std::time::Instant::now());
        if let (Some(trace), Some(path)) = (self.trace.as_ref(), self.trace_path.as_ref()) {
            Self::ensure_parent(path)?;
            trace.write_chrome_json(path)?;
        }
        if let (Some(rec), Some(path)) = (self.metrics.as_ref(), self.metrics_path.as_ref()) {
            Self::ensure_parent(path)?;
            rec.write_csv(path)?;
        }
        if let Some(t0) = t0 {
            self.add_obs_ns(t0);
        }
        Ok(())
    }

    fn ensure_parent(path: &std::path::Path) -> std::io::Result<()> {
        match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir),
            _ => Ok(()),
        }
    }

    /// Whether the chip has fully drained: all threads done, no packets,
    /// batches, DRAM bursts, boundary messages or undispatched tasks in
    /// flight.
    pub fn is_done(&self) -> bool {
        self.engine.pending_messages() == 0 && self.engine.shards().iter().all(ChipShard::is_idle)
    }

    /// The chip's current cycle.
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    /// Advances the chip to exactly cycle `stop` whether or not it is
    /// idle — unlike [`run`](Self::run), which stops early once the chip
    /// drains. This is the chip-as-shard facade: an outer simulation
    /// (e.g. [`crate::cluster::Cluster`]) embeds the chip as one PDES
    /// shard and drives its clock window by window, submitting tasks at
    /// boundary-message timestamps in between. No-op when `stop` is not
    /// ahead of [`now`](Self::now).
    pub fn advance_until(&mut self, stop: Cycle) {
        self.advance_to(stop);
    }

    /// Advances the chip to cycle `stop`, pausing at metric-window
    /// boundaries so windows close exactly on their nominal edge. Thanks
    /// to absolute message timestamps, the pause schedule never changes
    /// the simulation's state evolution.
    fn advance_to(&mut self, stop: Cycle) {
        while self.engine.now() < stop {
            let now = self.engine.now();
            let mut to = stop;
            if let Some(rec) = self.metrics.as_ref() {
                let b = rec.next_boundary();
                if b > now {
                    to = to.min(b);
                }
            }
            self.engine.run_windowed(to - now, self.workers);
            self.sync_obs();
            let reached = self.engine.now();
            while self.metrics.as_ref().is_some_and(|r| r.due(reached)) {
                self.close_metrics_window(reached);
            }
        }
    }

    /// Runs until every thread exits and the uncore drains, or `max`
    /// cycles elapse; returns the report. Completion is checked on a
    /// fixed cycle grid so the stopping point is identical for every
    /// worker count and observability configuration.
    pub fn run(&mut self, max: Cycle) -> SmarcoReport {
        while self.engine.now() < max && !self.is_done() {
            let stop = (((self.engine.now() / CHUNK) + 1) * CHUNK).min(max);
            self.advance_to(stop);
        }
        if self.config.obs.enabled() {
            self.flush_observations()
                .expect("write observation exports");
        }
        if let Some(path) = self.profile_path.clone() {
            self.write_profile(&path).expect("write profile exports");
        }
        self.report()
    }

    /// Builds the statistics report at the current cycle.
    pub fn report(&self) -> SmarcoReport {
        let now = self.engine.now();
        let mut instructions = 0;
        let mut idle = 0.0;
        let mut ifetch_miss = 0.0;
        let (mut l1d_hits, mut l1d_total) = (0u64, 0u64);
        let mut mem_latency = MeanTracker::new();
        let mut sub_util = 0.0;
        for sub in self.subs() {
            for c in sub.cores() {
                let s = c.stats();
                instructions += s.instructions;
                idle += s.idle_ratio(c.config().pairs);
                ifetch_miss += 1.0 - s.ifetch.ratio();
                let cs = c.l1d_stats();
                l1d_hits += cs.accesses.hits();
                l1d_total += cs.accesses.total();
            }
            mem_latency.merge(sub.mem_latency());
            sub_util += sub.payload_utilization();
        }
        let mut degradation = self.hub().degradation(now);
        for sub in self.subs() {
            degradation.absorb(&sub.degradation());
        }
        let n = self.cores_len() as f64;
        SmarcoReport {
            cycles: now,
            instructions,
            requests: self.subs().map(SubShard::requests).sum(),
            dram_requests: self.hub().dram_requests(),
            mem_latency,
            dram_utilization: self.hub().dram().utilization(now.max(1)),
            main_ring_utilization: self.hub().payload_utilization(),
            subring_utilization: sub_util / self.config.noc.subrings as f64,
            mact_collected: self.subs().map(|s| s.mact().stats().collected.get()).sum(),
            mact_batches: self.subs().map(|s| s.mact().stats().batches.get()).sum(),
            idle_ratio: idle / n,
            ifetch_miss_ratio: ifetch_miss / n,
            l1d_miss_ratio: if l1d_total == 0 {
                0.0
            } else {
                1.0 - l1d_hits as f64 / l1d_total as f64
            },
            degradation,
        }
    }
}

impl CycleModel for SmarcoSystem {
    fn tick(&mut self, now: Cycle) {
        debug_assert_eq!(now, self.engine.now(), "tick must follow the chip clock");
        self.engine.run_windowed(1, 1);
        self.sync_obs();
        let reached = self.engine.now();
        if self.metrics.as_ref().is_some_and(|r| r.due(reached)) {
            self.close_metrics_window(reached);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::mix::{AddressModel, GranularityMix, OpMix, SyntheticStream};
    use smarco_isa::{Op, ProgramBuilder};
    use smarco_sim::rng::SimRng;

    fn build(cfg: SmarcoConfig) -> SmarcoSystem {
        SmarcoSystem::builder().config(cfg).build().unwrap()
    }

    fn htc_mix(base: u64) -> OpMix {
        OpMix {
            mem_frac: 0.35,
            load_frac: 0.7,
            branch_frac: 0.1,
            branch_miss: 0.03,
            realtime_frac: 0.0,
            granularity: GranularityMix::new([0.3, 0.3, 0.2, 0.15, 0.05, 0.0, 0.0]),
            addresses: AddressModel::random(base, 1 << 22),
        }
    }

    fn loaded_tiny(threads_per_core: usize, instrs: u64) -> SmarcoSystem {
        loaded_tiny_with(SmarcoConfig::tiny(), threads_per_core, instrs)
    }

    fn loaded_tiny_with(cfg: SmarcoConfig, threads_per_core: usize, instrs: u64) -> SmarcoSystem {
        let mut sys = build(cfg);
        let mut seed = 1;
        for c in 0..sys.cores_len() {
            for _ in 0..threads_per_core {
                let mix = htc_mix(0x100_0000 + c as u64 * (1 << 22));
                sys.attach(
                    c,
                    Box::new(SyntheticStream::new(mix, instrs, SimRng::new(seed))),
                )
                .unwrap();
                seed += 1;
            }
        }
        sys
    }

    #[test]
    fn chip_runs_to_completion() {
        let mut sys = loaded_tiny(4, 300);
        let report = sys.run(2_000_000);
        assert!(sys.is_done(), "chip drained");
        assert_eq!(report.instructions, 16 * 4 * 301);
        assert!(report.ipc() > 0.0);
        assert!(report.requests > 0);
        assert!(report.mem_latency.mean() > 0.0);
    }

    /// Loads every core with threads that cooperatively scan a per-sub-ring
    /// region in an interleaved pattern — the access shape of MapReduce
    /// slice processing, where the MACT's cross-core merging shines.
    fn loaded_interleaved(mut sys: SmarcoSystem, loads_per_thread: u64) -> SmarcoSystem {
        use smarco_isa::stream::FnStream;
        let cps = sys.config().noc.cores_per_subring;
        let tpc = 4usize; // threads per core, one per pair
        let total = cps * tpc; // threads per sub-ring
        for c in 0..sys.cores_len() {
            let sr = c / cps;
            let base = 0x100_0000 + sr as u64 * (1 << 22);
            for t in 0..tpc {
                let j = (c % cps) * tpc + t;
                let mut i = 0u64;
                let stream = FnStream::new(move || {
                    if i == loads_per_thread {
                        None
                    } else {
                        let addr = base + (i * total as u64 + j as u64) * 2;
                        i += 1;
                        Some(Op::load(addr, 2))
                    }
                })
                .with_segment(0x1000, 256);
                sys.attach(c, Box::new(stream)).unwrap();
            }
        }
        sys
    }

    #[test]
    fn mact_reduces_dram_requests() {
        let mut with = loaded_interleaved(build(SmarcoConfig::tiny()), 300);
        let r_with = with.run(4_000_000);
        let mut cfg = SmarcoConfig::tiny();
        cfg.mact = None;
        let mut without = loaded_interleaved(build(cfg), 300);
        let r_without = without.run(4_000_000);
        assert!(r_with.mact_batches > 0);
        assert!(
            r_with.dram_requests < r_without.dram_requests / 2,
            "MACT {} vs conventional {}",
            r_with.dram_requests,
            r_without.dram_requests
        );
        assert!(
            r_with.request_reduction() > 2.0,
            "reduction {}",
            r_with.request_reduction()
        );
    }

    #[test]
    fn spm_resident_workload_stays_local() {
        let mut sys = build(SmarcoConfig::tiny());
        let space = sys.address_space();
        for c in 0..sys.cores_len() {
            sys.core_mut(c).spm_mut().make_resident(0, 8192);
            let base = space.spm_base(c);
            let prog = ProgramBuilder::at(0x1000)
                .op(Op::load(base, 8))
                .op(Op::compute())
                .op(Op::store(base + 8, 8))
                .repeat(200)
                .build();
            sys.attach(c, Box::new(prog.into_stream())).unwrap();
        }
        let report = sys.run(1_000_000);
        assert_eq!(report.requests, 0, "all traffic stayed in SPM");
        assert!(report.ipc() > 0.0);
    }

    #[test]
    fn realtime_requests_use_direct_path_and_bypass_mact() {
        let mut sys = build(SmarcoConfig::tiny());
        let mut mix = htc_mix(0x100_0000);
        mix.realtime_frac = 1.0;
        mix.load_frac = 1.0;
        sys.attach(0, Box::new(SyntheticStream::new(mix, 300, SimRng::new(3))))
            .unwrap();
        let report = sys.run(2_000_000);
        assert!(sys.is_done());
        assert_eq!(report.mact_collected, 0, "realtime traffic skips MACT");
        assert!(report.requests > 0);
    }

    #[test]
    fn realtime_without_direct_path_rides_the_rings() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.direct = None;
        let mut sys = build(cfg);
        let mut mix = htc_mix(0x100_0000);
        mix.realtime_frac = 1.0;
        mix.load_frac = 1.0;
        sys.attach(0, Box::new(SyntheticStream::new(mix, 200, SimRng::new(9))))
            .unwrap();
        let report = sys.run(2_000_000);
        assert!(sys.is_done());
        assert_eq!(report.mact_collected, 0, "realtime still skips the MACT");
        assert!(report.requests > 0);
    }

    #[test]
    fn remote_spm_round_trip() {
        let mut sys = build(SmarcoConfig::tiny());
        let space = sys.address_space();
        let remote = space.spm_base(5);
        let prog = ProgramBuilder::at(0)
            .op(Op::load(remote + 64, 8))
            .op(Op::store(remote + 128, 8))
            .repeat(10)
            .build();
        sys.attach(0, Box::new(prog.into_stream())).unwrap();
        let report = sys.run(2_000_000);
        assert!(sys.is_done());
        assert_eq!(report.requests, 20);
    }

    #[test]
    fn hardware_dispatcher_runs_tasks_to_their_deadlines() {
        use smarco_sched::TaskPriority;
        let mut sys = build(SmarcoConfig::tiny());
        // 256 tasks on a 128-slot chip: the dispatcher must queue, place
        // and recycle slots. Work ≈ 500 compute ops each.
        for i in 0..256u64 {
            let id = sys.submit_task(
                Box::new(smarco_isa::mix::compute_only(500)),
                2_000_000,
                600,
                if i % 8 == 0 {
                    TaskPriority::High
                } else {
                    TaskPriority::Normal
                },
            );
            assert_eq!(id, i);
        }
        let report = sys.run(10_000_000);
        assert!(sys.is_done(), "all tasks dispatched and exited");
        assert_eq!(sys.task_exits().len(), 256);
        assert!(sys
            .task_exits()
            .iter()
            .all(super::super::dispatch::TaskExit::met_deadline));
        assert_eq!(report.instructions, 256 * 501);
        // Exits are spread over time (slots were recycled, not all
        // parallel).
        let first = sys.task_exits().iter().map(|e| e.exit).min().unwrap();
        let last = sys.task_exits().iter().map(|e| e.exit).max().unwrap();
        assert!(last > first);
    }

    #[test]
    fn dispatcher_spreads_tasks_across_subrings() {
        use smarco_sched::TaskPriority;
        let mut sys = build(SmarcoConfig::tiny());
        for _ in 0..32 {
            sys.submit_task(
                Box::new(smarco_isa::mix::compute_only(200)),
                1_000_000,
                250,
                TaskPriority::Normal,
            );
        }
        // Let dispatch happen, then check live threads exist on several
        // sub-rings.
        for now in 0..64 {
            sys.tick(now);
        }
        let cps = sys.config().noc.cores_per_subring;
        let busy_subrings = (0..sys.config().noc.subrings)
            .filter(|&sr| (sr * cps..(sr + 1) * cps).any(|c| sys.core(c).live_threads() > 0))
            .count();
        assert!(busy_subrings >= 3, "only {busy_subrings} sub-rings busy");
        let _ = sys.run(10_000_000);
    }

    #[test]
    fn spm_to_spm_dma_travels_the_rings() {
        let mut sys = build(SmarcoConfig::tiny());
        let space = sys.address_space();
        // Core 5 (another sub-ring) owns the source data; core 0 pulls
        // 4 KB into its own SPM, syncs, then reads it locally.
        let src = space.spm_base(5) + 1024;
        let dst = space.spm_base(0);
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::Dma {
                src,
                dst,
                bytes: 4096,
            })
            .op(Op::Sync)
            .op(Op::load(dst + 512, 8))
            .op(Op::load(dst + 2048, 8))
            .build();
        sys.attach(0, Box::new(prog.into_stream())).unwrap();
        let report = sys.run(1_000_000);
        assert!(sys.is_done());
        // The pull is NoC traffic, not a blocking memory request; the
        // post-Sync loads hit the freshly resident SPM.
        assert_eq!(report.requests, 1, "one DMA pull command");
        assert_eq!(sys.core(0).stats().block_events, 0);
        assert!(sys.core(0).spm().is_resident(0, 4096));
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = loaded_tiny(4, 200).run(2_000_000);
        let r2 = loaded_tiny(4, 200).run(2_000_000);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.requests, r2.requests);
        assert_eq!(r1.dram_requests, r2.dram_requests);
        assert_eq!(r1.instructions, r2.instructions);
    }

    #[test]
    fn parallel_workers_match_sequential_exactly() {
        let seq = loaded_tiny(4, 200).run(2_000_000);
        for workers in [2, 3, 5] {
            let mut cfg = SmarcoConfig::tiny();
            cfg.workers = workers;
            let par = loaded_tiny_with(cfg, 4, 200).run(2_000_000);
            assert_eq!(par, seq, "worker count {workers} diverged");
        }
    }

    #[test]
    fn attach_anywhere_fills_cores_in_order() {
        let mut sys = build(SmarcoConfig::tiny());
        for i in 0..(16 * 8) {
            let (c, _t) = sys
                .attach_anywhere(Box::new(smarco_isa::mix::compute_only(10)))
                .unwrap();
            assert_eq!(c, i / 8);
        }
        assert!(sys
            .attach_anywhere(Box::new(smarco_isa::mix::compute_only(10)))
            .is_err());
    }

    #[test]
    fn more_threads_raise_chip_throughput() {
        let r1 = loaded_tiny(1, 400).run(4_000_000);
        let r8 = loaded_tiny(8, 400).run(4_000_000);
        let ipc1 = r1.ipc();
        let ipc8 = r8.ipc();
        assert!(
            ipc8 > ipc1 * 2.0,
            "8-thread ipc {ipc8:.2} vs 1-thread {ipc1:.2}"
        );
    }
}
