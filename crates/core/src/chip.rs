//! The full SmarCo chip: cores + hierarchical ring + MACT + direct
//! datapath + DDR (Fig. 4).
//!
//! Request life cycle (read): a thread's load misses → the core emits a
//! word-granularity request → it rides the sub-ring to the junction →
//! the junction's **MACT** collects it (or it bypasses if real-time /
//! collection is off) → the packed 64-byte batch rides the main ring to
//! its DDR controller → DRAM serves one burst → the batch *reply* rides
//! the main ring back to the junction → per-request replies fan out over
//! the sub-ring → [`crate::tcg::TcgCore::complete`] unblocks the thread,
//! which resumes per the in-pair state machine. Real-time reads can take
//! the star-shaped direct datapath both ways instead (§3.5.2).

use std::collections::HashMap;
use std::path::PathBuf;

use smarco_mem::dram::Dram;
use smarco_mem::mact::{Batch, Mact, MactOutcome};
use smarco_mem::map::AddressSpace;
use smarco_mem::request::{MemRequest, RequestId, RequestIdAllocator};
use smarco_noc::direct::DirectPath;
use smarco_noc::packet::{NodeId, Packet};
use smarco_noc::HierarchicalRing;
use smarco_sim::engine::CycleModel;
use smarco_sim::obs::{EventTrace, MetricsRecorder, TraceConfig};
use smarco_sim::stats::{MeanTracker, StatsReport};
use smarco_sim::Cycle;

use crate::config::SmarcoConfig;
use crate::dispatch::HardwareDispatcher;
use crate::report::SmarcoReport;
use crate::tcg::{CoreFull, CoreRequest, RequestKind, TcgCore};

/// A request travelling the uncore, with enough context to complete it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoreReq {
    /// The memory request.
    pub req: MemRequest,
    /// Issuing thread slot on the core (for completion).
    pub thread: usize,
    /// Path that produced it.
    pub kind: RequestKind,
}

/// Semantic payload of chip NoC packets.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipPayload {
    /// Core → junction (MACT-eligible) or → memory controller (bypass).
    Req(UncoreReq),
    /// Junction → memory controller: a packed MACT line.
    Batch(Batch),
    /// Memory controller → junction: a served read batch.
    BatchReply(Batch),
    /// Memory-side reply to a single blocking request.
    Reply(UncoreReq),
    /// Core → core: access to a remote scratchpad.
    RemoteSpm(UncoreReq),
    /// Owner core → requester: remote-scratchpad completion.
    RemoteSpmReply(UncoreReq),
    /// Core → owner core: SPM-to-SPM DMA pull command (§3.5.1).
    DmaReq(UncoreReq),
    /// Owner core → requester: the pulled DMA data.
    DmaData(UncoreReq),
}

#[derive(Debug, Clone)]
enum DramJob {
    Single { ucr: UncoreReq, via_direct: bool },
    BatchJob(Batch),
}

/// Fixed NoC header bytes for request/descriptor packets.
const REQ_HEADER_BYTES: u32 = 4;
/// Descriptor bytes of a batch packet (type, tag, vector).
const BATCH_HEADER_BYTES: u32 = 8;

/// The assembled chip.
///
/// # Examples
///
/// ```
/// use smarco_core::chip::SmarcoSystem;
/// use smarco_core::config::SmarcoConfig;
/// use smarco_isa::mix::compute_only;
///
/// let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
/// sys.attach(0, Box::new(compute_only(100)))?;
/// let report = sys.run(100_000);
/// assert_eq!(report.instructions, 101); // 100 computes + Exit
/// # Ok::<(), smarco_core::tcg::CoreFull>(())
/// ```
pub struct SmarcoSystem {
    config: SmarcoConfig,
    space: AddressSpace,
    cores: Vec<TcgCore>,
    noc: HierarchicalRing<ChipPayload>,
    macts: Vec<Mact>,
    dram: Dram<DramJob>,
    direct_to_mem: Option<DirectPath<UncoreReq>>,
    direct_from_mem: Option<DirectPath<UncoreReq>>,
    ids: RequestIdAllocator,
    next_packet: u64,
    /// End-to-end latency of blocking requests (issue → complete).
    mem_latency: MeanTracker,
    requests: u64,
    dram_requests: u64,
    /// Blocking requests in flight: id → issuing thread slot (the thread
    /// context is not carried through MACT batches, so it lives here).
    outstanding: HashMap<RequestId, usize>,
    /// Two-level hardware task dispatcher (§3.7).
    dispatcher: HardwareDispatcher,
    req_buf: Vec<CoreRequest>,
    now: Cycle,
    /// Chip-wide event trace (ring buffer); components drain into it each
    /// tick.
    trace: Option<EventTrace>,
    /// Windowed time-series metrics.
    metrics: Option<MetricsRecorder>,
    /// Where to write the Chrome-trace JSON at end of run.
    trace_path: Option<PathBuf>,
    /// Where to write the per-window CSV at end of run.
    metrics_path: Option<PathBuf>,
}

impl std::fmt::Debug for SmarcoSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmarcoSystem")
            .field("cores", &self.cores.len())
            .field("now", &self.now)
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl SmarcoSystem {
    /// Builds the chip.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SmarcoConfig) -> Self {
        config.validate();
        let dispatcher = HardwareDispatcher::new(
            config.noc.subrings,
            config.noc.cores_per_subring * config.tcg.resident_threads,
        );
        let space = AddressSpace::new(config.noc.cores(), config.dram.channels);
        let cores = (0..config.noc.cores())
            .map(|i| TcgCore::new(i, config.tcg, space))
            .collect();
        let macts = (0..config.noc.subrings)
            .map(|_| Mact::new(config.mact.unwrap_or_default()))
            .collect();
        let mut sys = Self {
            noc: HierarchicalRing::new(config.noc),
            macts,
            dram: Dram::new(config.dram),
            direct_to_mem: config.direct.map(DirectPath::new),
            direct_from_mem: config.direct.map(DirectPath::new),
            cores,
            space,
            config,
            ids: RequestIdAllocator::new(),
            next_packet: 0,
            mem_latency: MeanTracker::new(),
            requests: 0,
            dram_requests: 0,
            outstanding: HashMap::new(),
            dispatcher,
            req_buf: Vec::new(),
            now: 0,
            trace: None,
            metrics: None,
            trace_path: None,
            metrics_path: None,
        };
        if let Some(tc) = sys.config.obs.trace {
            sys.enable_tracing(tc);
        }
        if let Some(w) = sys.config.obs.sample_window {
            sys.sample_every(w);
        }
        sys
    }

    /// Turns event tracing on across every component. Idempotent beyond
    /// resetting the ring buffer to `cfg.capacity`.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        for core in &mut self.cores {
            core.enable_trace(cfg);
        }
        for (sr, m) in self.macts.iter_mut().enumerate() {
            m.enable_trace(sr);
        }
        self.dram.enable_trace();
        self.noc.enable_trace();
        self.dispatcher.enable_trace();
        self.trace = Some(EventTrace::new(cfg.capacity));
        self.config.obs.trace = Some(cfg);
    }

    /// Enables tracing (with defaults, if off) and writes the Chrome
    /// `trace_event` JSON to `path` when the run finishes — load the file
    /// in Perfetto / `chrome://tracing`.
    pub fn trace_to(&mut self, path: impl Into<PathBuf>) {
        if self.trace.is_none() {
            self.enable_tracing(TraceConfig::default());
        }
        self.trace_path = Some(path.into());
    }

    /// Enables windowed metrics sampling every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn sample_every(&mut self, window: Cycle) {
        self.metrics = Some(MetricsRecorder::new(window));
        self.config.obs.sample_window = Some(window);
    }

    /// Writes the per-window metrics CSV to `path` when the run finishes
    /// (enables sampling with a 10 000-cycle window if it was off).
    pub fn metrics_to(&mut self, path: impl Into<PathBuf>) {
        if self.metrics.is_none() {
            self.sample_every(10_000);
        }
        self.metrics_path = Some(path.into());
    }

    /// The chip-wide event trace, when tracing is enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// The windowed metrics recorder, when sampling is enabled.
    pub fn metrics(&self) -> Option<&MetricsRecorder> {
        self.metrics.as_ref()
    }

    /// Chip configuration.
    pub fn config(&self) -> &SmarcoConfig {
        &self.config
    }

    /// The unified address space.
    pub fn address_space(&self) -> AddressSpace {
        self.space
    }

    /// Immutable view of core `id`.
    pub fn core(&self, id: usize) -> &TcgCore {
        &self.cores[id]
    }

    /// Mutable view of core `id` (e.g. to pre-stage SPM data).
    pub fn core_mut(&mut self, id: usize) -> &mut TcgCore {
        &mut self.cores[id]
    }

    /// Number of cores.
    pub fn cores_len(&self) -> usize {
        self.cores.len()
    }

    /// Per-sub-ring MACT statistics.
    pub fn mact_stats(&self) -> Vec<&smarco_mem::mact::MactStats> {
        self.macts.iter().map(smarco_mem::Mact::stats).collect()
    }

    /// Submits a task with a deadline to the hardware dispatcher (§3.7):
    /// the main scheduler picks the least-loaded sub-ring, whose
    /// laxity-aware chain table binds it to a TCG thread slot as one
    /// frees up. Returns the task id; exits appear in
    /// [`task_exits`](Self::task_exits).
    pub fn submit_task(
        &mut self,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
        deadline: Cycle,
        work_estimate: Cycle,
        priority: smarco_sched::TaskPriority,
    ) -> u64 {
        self.dispatcher
            .submit(stream, deadline, work_estimate, priority, self.now)
    }

    /// Exit records of hardware-dispatched tasks.
    pub fn task_exits(&self) -> &[crate::dispatch::TaskExit] {
        self.dispatcher.exits()
    }

    /// Attaches a thread stream to a specific core.
    ///
    /// # Errors
    ///
    /// Returns [`CoreFull`] when the core has no vacant slot.
    pub fn attach(
        &mut self,
        core: usize,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
    ) -> Result<usize, CoreFull> {
        self.cores[core].attach(stream)
    }

    /// Attaches a stream to the first core with a vacant slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreFull`] when the whole chip is saturated.
    pub fn attach_anywhere(
        &mut self,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
    ) -> Result<(usize, usize), CoreFull> {
        let mut stream = stream;
        for c in 0..self.cores.len() {
            match self.cores[c].attach(stream) {
                Ok(t) => return Ok((c, t)),
                Err(e) => stream = e.into_stream(),
            }
        }
        Err(self.cores[0].attach(stream).expect_err("core 0 known full"))
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / 4096) % self.config.dram.channels as u64) as usize
    }

    fn packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        payload: ChipPayload,
    ) -> Packet<ChipPayload> {
        let id = self.next_packet;
        self.next_packet += 1;
        Packet::new(id, src, dst, bytes.max(1), self.now, payload)
    }

    fn subring_of_core(&self, core: usize) -> usize {
        core / self.config.noc.cores_per_subring
    }

    /// Routes a fresh core request into the uncore.
    fn route_request(&mut self, core: usize, r: CoreRequest, now: Cycle) {
        self.requests += 1;
        let req = MemRequest {
            id: self.ids.next_id(),
            core,
            mem: r.mem,
            is_write: r.is_write,
            issued_at: now,
        };
        let ucr = UncoreReq {
            req,
            thread: r.thread,
            kind: r.kind,
        };
        if r.blocking {
            self.outstanding.insert(req.id, r.thread);
        }
        let sr = self.subring_of_core(core);
        if let RequestKind::DmaPull { owner, .. } = r.kind {
            // DMA command descriptor to the owning core; the data rides
            // back as one (possibly multi-cycle) packet.
            let pkt = self.packet(
                NodeId::Core(core),
                NodeId::Core(owner),
                REQ_HEADER_BYTES,
                ChipPayload::DmaReq(ucr),
            );
            if let Some(p) = self.noc.inject(pkt, now) {
                self.handle_delivery(p, now);
            }
            return;
        }
        if let RequestKind::RemoteSpm { owner } = r.kind {
            let bytes = if r.is_write {
                u32::from(r.mem.bytes) + REQ_HEADER_BYTES
            } else {
                REQ_HEADER_BYTES
            };
            let pkt = self.packet(
                NodeId::Core(core),
                NodeId::Core(owner),
                bytes,
                ChipPayload::RemoteSpm(ucr),
            );
            if let Some(p) = self.noc.inject(pkt, now) {
                self.handle_delivery(p, now);
            }
            return;
        }
        // Real-time reads may use the direct datapath.
        let realtime = r.mem.priority == smarco_isa::Priority::Realtime;
        if realtime && !r.is_write {
            if let Some(dp) = self.direct_to_mem.as_mut() {
                dp.send(sr, REQ_HEADER_BYTES, now, ucr);
                return;
            }
        }
        let bytes = if r.is_write {
            (r.span_bytes.min(u64::from(u32::MAX)) as u32) + REQ_HEADER_BYTES
        } else {
            REQ_HEADER_BYTES
        };
        let mact_on = self.config.mact.is_some() && !realtime;
        let dst = if mact_on {
            NodeId::Junction(sr)
        } else {
            NodeId::MemCtrl(self.channel_of(r.mem.addr))
        };
        let mut pkt = self.packet(NodeId::Core(core), dst, bytes, ChipPayload::Req(ucr));
        pkt.realtime = realtime;
        if let Some(p) = self.noc.inject(pkt, now) {
            self.handle_delivery(p, now);
        }
    }

    fn enqueue_dram(&mut self, addr: u64, span: u64, job: DramJob, now: Cycle) {
        self.dram_requests += 1;
        let channel = self.channel_of(addr);
        self.dram.enqueue(channel, span.max(1), now, job);
    }

    fn handle_delivery(&mut self, pkt: Packet<ChipPayload>, now: Cycle) {
        match pkt.payload {
            ChipPayload::Req(ucr) => match pkt.dst {
                NodeId::Junction(sr) => match self.macts[sr].offer(ucr.req, now) {
                    MactOutcome::Collected => {}
                    MactOutcome::Bypass(req) => {
                        let bytes = if req.is_write {
                            u32::from(req.mem.bytes) + REQ_HEADER_BYTES
                        } else {
                            REQ_HEADER_BYTES
                        };
                        let dst = NodeId::MemCtrl(self.channel_of(req.mem.addr));
                        let ucr2 = UncoreReq { req, ..ucr };
                        let p =
                            self.packet(NodeId::Junction(sr), dst, bytes, ChipPayload::Req(ucr2));
                        if let Some(d) = self.noc.inject(p, now) {
                            self.handle_delivery(d, now);
                        }
                    }
                },
                NodeId::MemCtrl(_) => {
                    self.enqueue_dram(
                        ucr.req.mem.addr,
                        u64::from(ucr.req.mem.bytes),
                        DramJob::Single {
                            ucr,
                            via_direct: false,
                        },
                        now,
                    );
                }
                other => panic!("request packet delivered to {other:?}"),
            },
            ChipPayload::Batch(batch) => {
                self.enqueue_dram(batch.base, batch.span_bytes, DramJob::BatchJob(batch), now);
            }
            ChipPayload::BatchReply(batch) => {
                let NodeId::Junction(sr) = pkt.dst else {
                    panic!("batch reply delivered off-junction to {:?}", pkt.dst)
                };
                for req in batch.requests {
                    if req.is_write {
                        continue;
                    }
                    let ucr = UncoreReq {
                        req,
                        thread: usize::MAX,
                        kind: RequestKind::CacheFill,
                    };
                    let p = self.packet(
                        NodeId::Junction(sr),
                        NodeId::Core(req.core),
                        u32::from(req.mem.bytes),
                        ChipPayload::Reply(ucr),
                    );
                    if let Some(d) = self.noc.inject(p, now) {
                        self.handle_delivery(d, now);
                    }
                }
            }
            ChipPayload::Reply(ucr) => {
                let NodeId::Core(c) = pkt.dst else {
                    panic!("reply delivered off-core to {:?}", pkt.dst)
                };
                self.complete_request(c, ucr, now);
            }
            ChipPayload::RemoteSpm(ucr) => {
                let NodeId::Core(owner) = pkt.dst else {
                    panic!("remote SPM packet delivered off-core to {:?}", pkt.dst)
                };
                // Serve at the owner (the owner's SPM is software-managed;
                // remote accesses are to data the runtime placed there).
                let bytes = if ucr.req.is_write {
                    1
                } else {
                    u32::from(ucr.req.mem.bytes)
                };
                let p = self.packet(
                    NodeId::Core(owner),
                    NodeId::Core(ucr.req.core),
                    bytes,
                    ChipPayload::RemoteSpmReply(ucr),
                );
                if let Some(d) = self.noc.inject(p, now) {
                    self.handle_delivery(d, now);
                }
            }
            ChipPayload::RemoteSpmReply(ucr) => {
                let NodeId::Core(c) = pkt.dst else {
                    panic!("remote SPM reply delivered off-core to {:?}", pkt.dst)
                };
                self.complete_request(c, ucr, now);
            }
            ChipPayload::DmaReq(ucr) => {
                let NodeId::Core(owner) = pkt.dst else {
                    panic!("DMA command delivered off-core to {:?}", pkt.dst)
                };
                // The owner streams the requested range back as one
                // wormhole packet sized by the transfer.
                let span = u32::try_from(self.dma_span_of(&ucr))
                    .unwrap_or(u32::MAX)
                    .max(1);
                let p = self.packet(
                    NodeId::Core(owner),
                    NodeId::Core(ucr.req.core),
                    span,
                    ChipPayload::DmaData(ucr),
                );
                if let Some(d) = self.noc.inject(p, now) {
                    self.handle_delivery(d, now);
                }
            }
            ChipPayload::DmaData(ucr) => {
                let NodeId::Core(c) = pkt.dst else {
                    panic!("DMA data delivered off-core to {:?}", pkt.dst)
                };
                debug_assert_eq!(c, ucr.req.core);
                if let RequestKind::DmaPull { fill, .. } = ucr.kind {
                    self.cores[c].dma_complete(ucr.thread, fill);
                }
            }
        }
    }

    /// Transfer size of a DMA pull. `MemRef` widths cap at 64 bytes, so
    /// the size is carried by the fill range (one SPM block when the
    /// destination is not local SPM).
    fn dma_span_of(&self, ucr: &UncoreReq) -> u64 {
        match ucr.kind {
            RequestKind::DmaPull {
                fill: Some((_, bytes)),
                ..
            } => bytes,
            _ => 64,
        }
    }

    fn complete_request(&mut self, core: usize, ucr: UncoreReq, now: Cycle) {
        debug_assert_eq!(core, ucr.req.core);
        if let Some(thread) = self.outstanding.remove(&ucr.req.id) {
            let lat = now.saturating_sub(ucr.req.issued_at) as f64;
            self.mem_latency.record(lat);
            if let Some(rec) = self.metrics.as_mut() {
                rec.record_latency(lat);
            }
            self.cores[core].complete(thread, now);
        }
    }

    /// Moves every component's staged events into the chip-wide ring
    /// buffer (deterministic drain order: cores, NoC, MACTs, DRAM,
    /// scheduler).
    fn drain_traces(&mut self) {
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        for core in &mut self.cores {
            if let Some(buf) = core.trace_mut() {
                buf.drain_into(trace);
            }
        }
        self.noc.drain_trace(trace);
        for m in &mut self.macts {
            if let Some(buf) = m.trace_mut() {
                buf.drain_into(trace);
            }
        }
        self.dram.drain_trace(trace);
        self.dispatcher.drain_trace(trace);
    }

    /// Cumulative chip counters for windowed-metrics diffing.
    fn cumulative_counters(&self, now: Cycle) -> StatsReport {
        let mut s = StatsReport::new();
        s.set("cycles", now as f64);
        let mut instructions = 0u64;
        let mut idle_pairs = 0u64;
        for (i, c) in self.cores.iter().enumerate() {
            let cs = c.stats();
            instructions += cs.instructions;
            idle_pairs += cs.idle_pair_cycles;
            s.set(&format!("core{i:02}_instructions"), cs.instructions as f64);
        }
        s.set("instructions", instructions as f64);
        s.set("idle_pair_cycles", idle_pairs as f64);
        s.set("requests", self.requests as f64);
        s.set("dram_requests", self.dram_requests as f64);
        s.set("dram_bytes", self.dram.bytes_served() as f64);
        s.set("dram_busy_cycles", self.dram.busy_cycles() as f64);
        s.set(
            "mact_collected",
            self.macts
                .iter()
                .map(|m| m.stats().collected.get())
                .sum::<u64>() as f64,
        );
        s.set(
            "mact_batches",
            self.macts
                .iter()
                .map(|m| m.stats().batches.get())
                .sum::<u64>() as f64,
        );
        let (mp, mo) = self.noc.main_payload_offered();
        let (sp, so) = self.noc.sub_payload_offered();
        s.set("main_ring_payload_bytes", mp as f64);
        s.set("main_ring_offered_bytes", mo as f64);
        s.set("subring_payload_bytes", sp as f64);
        s.set("subring_offered_bytes", so as f64);
        s
    }

    /// Instantaneous gauges copied into the closing window as-is.
    fn gauges(&self) -> StatsReport {
        let mut g = StatsReport::new();
        g.set("sched_queue_depth", self.dispatcher.queued() as f64);
        g.set("sched_in_flight", self.dispatcher.in_flight() as f64);
        g.set(
            "mact_open_lines",
            self.macts
                .iter()
                .map(|m| m.open_lines() as u64)
                .sum::<u64>() as f64,
        );
        g.set("outstanding_requests", self.outstanding.len() as f64);
        g
    }

    /// Closes the metrics window ending at `now` and adds derived rates.
    fn close_metrics_window(&mut self, now: Cycle) {
        let cumulative = self.cumulative_counters(now);
        let gauges = self.gauges();
        let pairs = self.config.tcg.pairs as f64;
        let ncores = self.cores.len() as f64;
        let Some(rec) = self.metrics.as_mut() else {
            return;
        };
        let w = rec.close_window(now, &cumulative, &gauges);
        let dc = w.get("cycles").unwrap_or(0.0);
        if dc > 0.0 {
            let di = w.get("instructions").unwrap_or(0.0);
            w.set("ipc", di / dc);
            for i in 0..ncores as usize {
                let key = format!("core{i:02}_instructions");
                if let Some(ci) = w.get(&key) {
                    w.set(&format!("core{i:02}_ipc"), ci / dc);
                }
            }
            let idle = w.get("idle_pair_cycles").unwrap_or(0.0);
            w.set("idle_ratio", idle / (dc * pairs * ncores));
            w.set(
                "dram_bandwidth_bpc",
                w.get("dram_bytes").unwrap_or(0.0) / dc,
            );
            let channels = self.config.dram.channels as f64;
            w.set(
                "dram_utilization",
                w.get("dram_busy_cycles").unwrap_or(0.0) / (dc * channels),
            );
            let batches = w.get("mact_batches").unwrap_or(0.0);
            w.set("mact_batch_rate", batches / dc);
        }
        let so = w.get("subring_offered_bytes").unwrap_or(0.0);
        if so > 0.0 {
            w.set(
                "subring_utilization",
                w.get("subring_payload_bytes").unwrap_or(0.0) / so,
            );
        }
        let mo = w.get("main_ring_offered_bytes").unwrap_or(0.0);
        if mo > 0.0 {
            w.set(
                "main_ring_utilization",
                w.get("main_ring_payload_bytes").unwrap_or(0.0) / mo,
            );
        }
    }

    /// Closes any open partial window and writes the configured trace /
    /// metrics exports.
    ///
    /// Called automatically at the end of [`run`](Self::run); call
    /// directly when driving the chip tick-by-tick.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the export files.
    pub fn flush_observations(&mut self) -> std::io::Result<()> {
        if self.metrics.is_some() {
            self.close_metrics_window(self.now);
        }
        if let (Some(trace), Some(path)) = (self.trace.as_ref(), self.trace_path.as_ref()) {
            Self::ensure_parent(path)?;
            trace.write_chrome_json(path)?;
        }
        if let (Some(rec), Some(path)) = (self.metrics.as_ref(), self.metrics_path.as_ref()) {
            Self::ensure_parent(path)?;
            rec.write_csv(path)?;
        }
        Ok(())
    }

    fn ensure_parent(path: &std::path::Path) -> std::io::Result<()> {
        match path.parent() {
            Some(dir) if !dir.as_os_str().is_empty() => std::fs::create_dir_all(dir),
            _ => Ok(()),
        }
    }

    /// Whether the chip has fully drained: all threads done, no packets,
    /// batches, DRAM bursts or undispatched tasks in flight.
    pub fn is_done(&self) -> bool {
        self.dispatcher.is_idle()
            && self.outstanding.is_empty()
            && self.noc.is_idle()
            && self.dram.is_idle()
            && self.macts.iter().all(|m| m.open_lines() == 0)
            && self.direct_to_mem.as_ref().is_none_or(DirectPath::is_idle)
            && self
                .direct_from_mem
                .as_ref()
                .is_none_or(DirectPath::is_idle)
            && self.cores.iter().all(TcgCore::is_done)
    }

    /// Runs until every thread exits and the uncore drains, or `max`
    /// cycles elapse; returns the report.
    pub fn run(&mut self, max: Cycle) -> SmarcoReport {
        while self.now < max && !self.is_done() {
            self.tick(self.now);
        }
        if self.config.obs.enabled() {
            self.flush_observations()
                .expect("write observation exports");
        }
        self.report()
    }

    /// Builds the statistics report at the current cycle.
    pub fn report(&self) -> SmarcoReport {
        let mut instructions = 0;
        let mut idle = 0.0;
        let mut ifetch_miss = 0.0;
        let (mut l1d_hits, mut l1d_total) = (0u64, 0u64);
        for c in &self.cores {
            let s = c.stats();
            instructions += s.instructions;
            idle += s.idle_ratio(c.config().pairs);
            ifetch_miss += 1.0 - s.ifetch.ratio();
            let cs = c.l1d_stats();
            l1d_hits += cs.accesses.hits();
            l1d_total += cs.accesses.total();
        }
        let n = self.cores.len() as f64;
        SmarcoReport {
            cycles: self.now,
            instructions,
            requests: self.requests,
            dram_requests: self.dram_requests,
            mem_latency: self.mem_latency,
            dram_utilization: self.dram.utilization(self.now.max(1)),
            main_ring_utilization: self.noc.main_ring_utilization(),
            subring_utilization: self.noc.subring_utilization(),
            mact_collected: self.macts.iter().map(|m| m.stats().collected.get()).sum(),
            mact_batches: self.macts.iter().map(|m| m.stats().batches.get()).sum(),
            idle_ratio: idle / n,
            ifetch_miss_ratio: ifetch_miss / n,
            l1d_miss_ratio: if l1d_total == 0 {
                0.0
            } else {
                1.0 - l1d_hits as f64 / l1d_total as f64
            },
        }
    }
}

impl CycleModel for SmarcoSystem {
    fn tick(&mut self, now: Cycle) {
        self.now = now + 1;
        // 1. Direct-path replies reach cores.
        if let Some(dp) = self.direct_from_mem.as_mut() {
            for ucr in dp.tick(now) {
                self.complete_request(ucr.req.core, ucr, now);
            }
        }
        // 2. NoC deliveries.
        for pkt in self.noc.tick(now) {
            self.handle_delivery(pkt, now);
        }
        // 3. The hardware dispatcher binds ready tasks to freed slots.
        self.dispatcher
            .tick(&mut self.cores, self.config.noc.cores_per_subring, now);
        // 4. Cores issue; requests enter the uncore.
        let mut buf = std::mem::take(&mut self.req_buf);
        for c in 0..self.cores.len() {
            buf.clear();
            self.cores[c].tick(now, &mut buf);
            for r in buf.drain(..) {
                self.route_request(c, r, now);
            }
        }
        self.req_buf = buf;
        // 5. MACT deadlines; flushed batches head for memory.
        for sr in 0..self.macts.len() {
            let batches = self.macts[sr].tick(now);
            for batch in batches {
                let bytes = if batch.is_write {
                    batch.bytes_referenced + BATCH_HEADER_BYTES
                } else {
                    BATCH_HEADER_BYTES
                };
                let dst = NodeId::MemCtrl(self.channel_of(batch.base));
                let p = self.packet(NodeId::Junction(sr), dst, bytes, ChipPayload::Batch(batch));
                if let Some(d) = self.noc.inject(p, now) {
                    self.handle_delivery(d, now);
                }
            }
        }
        // 6. Direct-path requests reach DRAM.
        if let Some(dp) = self.direct_to_mem.as_mut() {
            let arrivals = dp.tick(now);
            for ucr in arrivals {
                self.enqueue_dram(
                    ucr.req.mem.addr,
                    u64::from(ucr.req.mem.bytes),
                    DramJob::Single {
                        ucr,
                        via_direct: true,
                    },
                    now,
                );
            }
        }
        // 7. DRAM completions produce replies.
        for job in self.dram.tick(now) {
            match job {
                DramJob::Single { ucr, via_direct } => {
                    if ucr.req.is_write {
                        continue; // writes complete silently
                    }
                    if via_direct {
                        let sr = self.subring_of_core(ucr.req.core);
                        self.direct_from_mem
                            .as_mut()
                            .expect("direct reply path exists")
                            .send(sr, u32::from(ucr.req.mem.bytes), now, ucr);
                    } else {
                        let p = self.packet(
                            NodeId::MemCtrl(self.channel_of(ucr.req.mem.addr)),
                            NodeId::Core(ucr.req.core),
                            u32::from(ucr.req.mem.bytes),
                            ChipPayload::Reply(ucr),
                        );
                        if let Some(d) = self.noc.inject(p, now) {
                            self.handle_delivery(d, now);
                        }
                    }
                }
                DramJob::BatchJob(batch) => {
                    if batch.is_write {
                        continue;
                    }
                    let sr =
                        self.subring_of_core(batch.requests.first().map(|r| r.core).unwrap_or(0));
                    let p = self.packet(
                        NodeId::MemCtrl(self.channel_of(batch.base)),
                        NodeId::Junction(sr),
                        batch.bytes_referenced.max(1),
                        ChipPayload::BatchReply(batch),
                    );
                    if let Some(d) = self.noc.inject(p, now) {
                        self.handle_delivery(d, now);
                    }
                }
            }
        }
        // 8. Observability: drain staged events, close due sample windows.
        // Strictly read-only with respect to the simulation state.
        if self.trace.is_some() {
            self.drain_traces();
        }
        if self.metrics.as_ref().is_some_and(|r| r.due(self.now)) {
            self.close_metrics_window(self.now);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::mix::{AddressModel, GranularityMix, OpMix, SyntheticStream};
    use smarco_isa::{Op, ProgramBuilder};
    use smarco_sim::rng::SimRng;

    fn htc_mix(base: u64) -> OpMix {
        OpMix {
            mem_frac: 0.35,
            load_frac: 0.7,
            branch_frac: 0.1,
            branch_miss: 0.03,
            realtime_frac: 0.0,
            granularity: GranularityMix::new([0.3, 0.3, 0.2, 0.15, 0.05, 0.0, 0.0]),
            addresses: AddressModel::random(base, 1 << 22),
        }
    }

    fn loaded_tiny(threads_per_core: usize, instrs: u64) -> SmarcoSystem {
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        let mut seed = 1;
        for c in 0..sys.cores_len() {
            for _ in 0..threads_per_core {
                let mix = htc_mix(0x100_0000 + c as u64 * (1 << 22));
                sys.attach(
                    c,
                    Box::new(SyntheticStream::new(mix, instrs, SimRng::new(seed))),
                )
                .unwrap();
                seed += 1;
            }
        }
        sys
    }

    #[test]
    fn chip_runs_to_completion() {
        let mut sys = loaded_tiny(4, 300);
        let report = sys.run(2_000_000);
        assert!(sys.is_done(), "chip drained");
        assert_eq!(report.instructions, 16 * 4 * 301);
        assert!(report.ipc() > 0.0);
        assert!(report.requests > 0);
        assert!(report.mem_latency.mean() > 0.0);
    }

    /// Loads every core with threads that cooperatively scan a per-sub-ring
    /// region in an interleaved pattern — the access shape of MapReduce
    /// slice processing, where the MACT's cross-core merging shines.
    fn loaded_interleaved(mut sys: SmarcoSystem, loads_per_thread: u64) -> SmarcoSystem {
        use smarco_isa::stream::FnStream;
        let cps = sys.config().noc.cores_per_subring;
        let tpc = 4usize; // threads per core, one per pair
        let total = cps * tpc; // threads per sub-ring
        for c in 0..sys.cores_len() {
            let sr = c / cps;
            let base = 0x100_0000 + sr as u64 * (1 << 22);
            for t in 0..tpc {
                let j = (c % cps) * tpc + t;
                let mut i = 0u64;
                let stream = FnStream::new(move || {
                    if i == loads_per_thread {
                        None
                    } else {
                        let addr = base + (i * total as u64 + j as u64) * 2;
                        i += 1;
                        Some(Op::load(addr, 2))
                    }
                })
                .with_segment(0x1000, 256);
                sys.attach(c, Box::new(stream)).unwrap();
            }
        }
        sys
    }

    #[test]
    fn mact_reduces_dram_requests() {
        let mut with = loaded_interleaved(SmarcoSystem::new(SmarcoConfig::tiny()), 300);
        let r_with = with.run(4_000_000);
        let mut cfg = SmarcoConfig::tiny();
        cfg.mact = None;
        let mut without = loaded_interleaved(SmarcoSystem::new(cfg), 300);
        let r_without = without.run(4_000_000);
        assert!(r_with.mact_batches > 0);
        assert!(
            r_with.dram_requests < r_without.dram_requests / 2,
            "MACT {} vs conventional {}",
            r_with.dram_requests,
            r_without.dram_requests
        );
        assert!(
            r_with.request_reduction() > 2.0,
            "reduction {}",
            r_with.request_reduction()
        );
    }

    #[test]
    fn spm_resident_workload_stays_local() {
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        let space = sys.address_space();
        for c in 0..sys.cores_len() {
            sys.core_mut(c).spm_mut().make_resident(0, 8192);
            let base = space.spm_base(c);
            let prog = ProgramBuilder::at(0x1000)
                .op(Op::load(base, 8))
                .op(Op::compute())
                .op(Op::store(base + 8, 8))
                .repeat(200)
                .build();
            sys.attach(c, Box::new(prog.into_stream())).unwrap();
        }
        let report = sys.run(1_000_000);
        assert_eq!(report.requests, 0, "all traffic stayed in SPM");
        assert!(report.ipc() > 0.0);
    }

    #[test]
    fn realtime_requests_use_direct_path_and_bypass_mact() {
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        let mut mix = htc_mix(0x100_0000);
        mix.realtime_frac = 1.0;
        mix.load_frac = 1.0;
        sys.attach(0, Box::new(SyntheticStream::new(mix, 300, SimRng::new(3))))
            .unwrap();
        let report = sys.run(2_000_000);
        assert!(sys.is_done());
        assert_eq!(report.mact_collected, 0, "realtime traffic skips MACT");
        assert!(report.requests > 0);
    }

    #[test]
    fn realtime_without_direct_path_rides_the_rings() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.direct = None;
        let mut sys = SmarcoSystem::new(cfg);
        let mut mix = htc_mix(0x100_0000);
        mix.realtime_frac = 1.0;
        mix.load_frac = 1.0;
        sys.attach(0, Box::new(SyntheticStream::new(mix, 200, SimRng::new(9))))
            .unwrap();
        let report = sys.run(2_000_000);
        assert!(sys.is_done());
        assert_eq!(report.mact_collected, 0, "realtime still skips the MACT");
        assert!(report.requests > 0);
    }

    #[test]
    fn remote_spm_round_trip() {
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        let space = sys.address_space();
        let remote = space.spm_base(5);
        let prog = ProgramBuilder::at(0)
            .op(Op::load(remote + 64, 8))
            .op(Op::store(remote + 128, 8))
            .repeat(10)
            .build();
        sys.attach(0, Box::new(prog.into_stream())).unwrap();
        let report = sys.run(2_000_000);
        assert!(sys.is_done());
        assert_eq!(report.requests, 20);
    }

    #[test]
    fn hardware_dispatcher_runs_tasks_to_their_deadlines() {
        use smarco_sched::TaskPriority;
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        // 256 tasks on a 128-slot chip: the dispatcher must queue, place
        // and recycle slots. Work ≈ 500 compute ops each.
        for i in 0..256u64 {
            let id = sys.submit_task(
                Box::new(smarco_isa::mix::compute_only(500)),
                2_000_000,
                600,
                if i % 8 == 0 {
                    TaskPriority::High
                } else {
                    TaskPriority::Normal
                },
            );
            assert_eq!(id, i);
        }
        let report = sys.run(10_000_000);
        assert!(sys.is_done(), "all tasks dispatched and exited");
        assert_eq!(sys.task_exits().len(), 256);
        assert!(sys
            .task_exits()
            .iter()
            .all(super::super::dispatch::TaskExit::met_deadline));
        assert_eq!(report.instructions, 256 * 501);
        // Exits are spread over time (slots were recycled, not all
        // parallel).
        let first = sys.task_exits().iter().map(|e| e.exit).min().unwrap();
        let last = sys.task_exits().iter().map(|e| e.exit).max().unwrap();
        assert!(last > first);
    }

    #[test]
    fn dispatcher_spreads_tasks_across_subrings() {
        use smarco_sched::TaskPriority;
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        for _ in 0..32 {
            sys.submit_task(
                Box::new(smarco_isa::mix::compute_only(200)),
                1_000_000,
                250,
                TaskPriority::Normal,
            );
        }
        // Let dispatch happen, then check live threads exist on several
        // sub-rings.
        for now in 0..64 {
            sys.tick(now);
        }
        let cps = sys.config().noc.cores_per_subring;
        let busy_subrings = (0..sys.config().noc.subrings)
            .filter(|&sr| (sr * cps..(sr + 1) * cps).any(|c| sys.core(c).live_threads() > 0))
            .count();
        assert!(busy_subrings >= 3, "only {busy_subrings} sub-rings busy");
        let _ = sys.run(10_000_000);
    }

    #[test]
    fn spm_to_spm_dma_travels_the_rings() {
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        let space = sys.address_space();
        // Core 5 (another sub-ring) owns the source data; core 0 pulls
        // 4 KB into its own SPM, syncs, then reads it locally.
        let src = space.spm_base(5) + 1024;
        let dst = space.spm_base(0);
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::Dma {
                src,
                dst,
                bytes: 4096,
            })
            .op(Op::Sync)
            .op(Op::load(dst + 512, 8))
            .op(Op::load(dst + 2048, 8))
            .build();
        sys.attach(0, Box::new(prog.into_stream())).unwrap();
        let report = sys.run(1_000_000);
        assert!(sys.is_done());
        // The pull is NoC traffic, not a blocking memory request; the
        // post-Sync loads hit the freshly resident SPM.
        assert_eq!(report.requests, 1, "one DMA pull command");
        assert_eq!(sys.core(0).stats().block_events, 0);
        assert!(sys.core(0).spm().is_resident(0, 4096));
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = loaded_tiny(4, 200).run(2_000_000);
        let r2 = loaded_tiny(4, 200).run(2_000_000);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.requests, r2.requests);
        assert_eq!(r1.dram_requests, r2.dram_requests);
        assert_eq!(r1.instructions, r2.instructions);
    }

    #[test]
    fn attach_anywhere_fills_cores_in_order() {
        let mut sys = SmarcoSystem::new(SmarcoConfig::tiny());
        for i in 0..(16 * 8) {
            let (c, _t) = sys
                .attach_anywhere(Box::new(smarco_isa::mix::compute_only(10)))
                .unwrap();
            assert_eq!(c, i / 8);
        }
        assert!(sys
            .attach_anywhere(Box::new(smarco_isa::mix::compute_only(10)))
            .is_err());
    }

    #[test]
    fn more_threads_raise_chip_throughput() {
        let r1 = loaded_tiny(1, 400).run(4_000_000);
        let r8 = loaded_tiny(8, 400).run(4_000_000);
        let ipc1 = r1.ipc();
        let ipc8 = r8.ipc();
        assert!(
            ipc8 > ipc1 * 2.0,
            "8-thread ipc {ipc8:.2} vs 1-thread {ipc1:.2}"
        );
    }
}
