//! The hardware task-dispatch path (§3.7, Fig. 4): the main scheduler on
//! the main ring load-balances submitted tasks across sub-rings; each
//! sub-ring's laxity-aware hardware scheduler then binds tasks to TCG
//! thread slots as they free up, preferring the least execution laxity.
//!
//! This closes the loop the paper draws between Figs. 4 and 16: tasks
//! arrive from the host with deadlines, hardware decides placement and
//! order, and exits are recorded against their deadlines — all while the
//! tasks' memory traffic contends on the real simulated rings and DRAM.

use std::collections::HashMap;

use smarco_isa::InstructionStream;
use smarco_sched::{LaxityAwareScheduler, MainScheduler, Task, TaskPriority, TaskScheduler};
use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::Cycle;

use crate::tcg::TcgCore;

/// Completion record of a dispatched task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskExit {
    /// Task id assigned at submission.
    pub task: u64,
    /// Cycle the task's thread exited.
    pub exit: Cycle,
    /// The task's deadline.
    pub deadline: Cycle,
}

impl TaskExit {
    /// Whether the task met its deadline.
    pub fn met_deadline(&self) -> bool {
        self.exit <= self.deadline
    }
}

/// The two-level hardware dispatcher.
pub struct HardwareDispatcher {
    main: MainScheduler,
    subs: Vec<LaxityAwareScheduler>,
    /// Submitted-but-undispatched task streams.
    pending: HashMap<u64, Box<dyn InstructionStream + Send>>,
    /// `(core, slot)` → `(task, sub-ring, work estimate)`.
    dispatched: HashMap<(usize, usize), (u64, usize, u64)>,
    exits: Vec<TaskExit>,
    /// Deadlines of in-flight tasks, by id.
    deadlines: HashMap<u64, Cycle>,
    /// Per-sub-ring dispatcher pipeline availability.
    ready_at: Vec<Cycle>,
    next_id: u64,
    /// Staged dispatch/exit events when tracing is enabled.
    trace: Option<TraceBuffer>,
}

impl std::fmt::Debug for HardwareDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HardwareDispatcher")
            .field("pending", &self.pending.len())
            .field("dispatched", &self.dispatched.len())
            .field("exits", &self.exits.len())
            .finish()
    }
}

impl HardwareDispatcher {
    /// Creates the dispatcher for `subrings` sub-rings whose chain tables
    /// hold `capacity` tasks each (SmarCo: 128).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(subrings: usize, capacity: usize) -> Self {
        Self {
            main: MainScheduler::new(subrings),
            subs: (0..subrings)
                .map(|_| LaxityAwareScheduler::new(capacity))
                .collect(),
            pending: HashMap::new(),
            dispatched: HashMap::new(),
            exits: Vec::new(),
            deadlines: HashMap::new(),
            ready_at: vec![0; subrings],
            next_id: 0,
            trace: None,
        }
    }

    /// Turns event tracing on: dispatch and exit decisions are reported on
    /// [`Track::Scheduler`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceBuffer::new(Track::Scheduler));
    }

    /// Moves staged scheduler events into `sink` (no-op when tracing is
    /// off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace.as_mut() {
            buf.drain_into(sink);
        }
    }

    /// Tasks queued in sub-ring chain tables, not yet bound to a slot.
    pub fn queued(&self) -> u64 {
        self.subs.iter().map(|s| s.pending() as u64).sum()
    }

    /// Tasks currently bound to thread slots.
    pub fn in_flight(&self) -> u64 {
        self.dispatched.len() as u64
    }

    /// Submits a task at cycle `now`: the main scheduler picks the
    /// least-loaded sub-ring; the sub-ring's chain table queues it by
    /// laxity. Returns the task id.
    pub fn submit(
        &mut self,
        stream: Box<dyn InstructionStream + Send>,
        deadline: Cycle,
        work_estimate: Cycle,
        priority: TaskPriority,
        now: Cycle,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let mut task = Task::new(id, now, deadline, work_estimate.max(1));
        if priority == TaskPriority::High {
            task = task.with_high_priority();
        }
        let sr = self.main.assign(&task);
        self.subs[sr].enqueue(task, now);
        self.pending.insert(id, stream);
        id
    }

    /// One cycle of dispatcher work over the chip's cores: consume exit
    /// signals, then bind at most one task per sub-ring to a vacant slot
    /// (the chain-table walk costs dispatch cycles).
    pub fn tick(&mut self, cores: &mut [TcgCore], cores_per_subring: usize, now: Cycle) {
        // Completions.
        for (c, core) in cores.iter_mut().enumerate() {
            for slot in core.take_retired() {
                if let Some((task, sr, work)) = self.dispatched.remove(&(c, slot)) {
                    self.main.complete(sr, work);
                    let deadline = self.deadline_of(task);
                    if let Some(buf) = self.trace.as_mut() {
                        buf.emit(
                            now,
                            EventKind::TaskExit {
                                task,
                                deadline_met: now <= deadline,
                            },
                        );
                    }
                    self.exits.push(TaskExit {
                        task,
                        exit: now,
                        deadline,
                    });
                    self.deadlines.remove(&task);
                }
            }
        }
        // Dispatch.
        for sr in 0..self.subs.len() {
            if now < self.ready_at[sr] || self.subs[sr].pending() == 0 {
                continue;
            }
            let first = sr * cores_per_subring;
            let Some(core_idx) =
                (first..first + cores_per_subring).find(|&c| cores[c].has_vacancy())
            else {
                continue;
            };
            if let Some(task) = self.subs[sr].dispatch(now) {
                self.ready_at[sr] = now + self.subs[sr].overhead();
                let stream = self.pending.remove(&task.id).expect("stream pending");
                let slot = cores[core_idx].attach(stream).expect("vacancy checked");
                if let Some(buf) = self.trace.as_mut() {
                    buf.emit(
                        now,
                        EventKind::TaskDispatch {
                            task: task.id,
                            laxity: task.laxity(now),
                            queued: self.subs[sr].pending() as u64,
                        },
                    );
                }
                self.dispatched
                    .insert((core_idx, slot), (task.id, sr, task.work));
                self.deadlines.insert(task.id, task.deadline);
            }
        }
    }

    fn deadline_of(&self, task: u64) -> Cycle {
        self.deadlines.get(&task).copied().unwrap_or(Cycle::MAX)
    }

    /// Exit records so far.
    pub fn exits(&self) -> &[TaskExit] {
        &self.exits
    }

    /// Whether every submitted task has been dispatched and exited.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.dispatched.is_empty()
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_id
    }
}
