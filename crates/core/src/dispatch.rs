//! The hardware task-dispatch path (§3.7, Fig. 4), split along the shard
//! boundary: the main scheduler (load balancing across sub-rings) lives in
//! the hub shard next to the main ring, while each sub-ring shard owns a
//! [`SubDispatcher`] — the laxity-aware chain table that binds tasks to TCG
//! thread slots as they free up.
//!
//! This closes the loop the paper draws between Figs. 4 and 16: tasks
//! arrive from the host with deadlines, hardware decides placement and
//! order, and exits are recorded against their deadlines — all while the
//! tasks' memory traffic contends on the real simulated rings and DRAM.
//! Exits travel back to the main scheduler as timestamped boundary
//! messages ([`ExitSignal`]), one junction latency after the thread
//! retires, so the hub's load accounting never needs to peek inside a
//! sub-ring shard mid-window.

use std::collections::HashMap;

use smarco_isa::InstructionStream;
use smarco_sched::{LaxityAwareScheduler, Task, TaskScheduler};
use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::Cycle;

use crate::tcg::TcgCore;

/// Completion record of a dispatched task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskExit {
    /// Task id assigned at submission.
    pub task: u64,
    /// Cycle the task's thread exited.
    pub exit: Cycle,
    /// The task's deadline.
    pub deadline: Cycle,
}

impl TaskExit {
    /// Whether the task met its deadline.
    pub fn met_deadline(&self) -> bool {
        self.exit <= self.deadline
    }
}

/// A task completion leaving a sub-ring shard for the hub's main
/// scheduler: everything the hub needs to record the exit and release the
/// sub-ring's load share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitSignal {
    /// Task id.
    pub task: u64,
    /// Cycle the task's thread exited (on the sub-ring's clock).
    pub exit: Cycle,
    /// The task's deadline.
    pub deadline: Cycle,
    /// The work estimate the main scheduler charged at assignment.
    pub work: u64,
}

/// One sub-ring's half of the two-level dispatcher: the laxity-aware chain
/// table plus the streams of queued tasks and the bookkeeping of which
/// thread slot runs which task.
pub struct SubDispatcher {
    sched: LaxityAwareScheduler,
    /// Queued-but-undispatched task streams.
    pending: HashMap<u64, Box<dyn InstructionStream + Send>>,
    /// `(local core, slot)` → `(task, work estimate)`.
    dispatched: HashMap<(usize, usize), (u64, u64)>,
    /// Deadlines of queued and in-flight tasks, by id.
    deadlines: HashMap<u64, Cycle>,
    /// Dispatcher pipeline availability (chain-table walks cost cycles).
    ready_at: Cycle,
    /// Staged dispatch/exit events when tracing is enabled.
    trace: Option<TraceBuffer>,
}

impl std::fmt::Debug for SubDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubDispatcher")
            .field("pending", &self.pending.len())
            .field("dispatched", &self.dispatched.len())
            .finish()
    }
}

impl SubDispatcher {
    /// Creates the dispatcher with a chain table of `capacity` tasks
    /// (SmarCo: one sub-ring's worth of thread slots).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            sched: LaxityAwareScheduler::new(capacity),
            pending: HashMap::new(),
            dispatched: HashMap::new(),
            deadlines: HashMap::new(),
            ready_at: 0,
            trace: None,
        }
    }

    /// Turns event tracing on: dispatch and exit decisions are reported on
    /// [`Track::Scheduler`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceBuffer::new(Track::Scheduler));
    }

    /// Moves staged scheduler events into `sink` (no-op when tracing is
    /// off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace.as_mut() {
            buf.drain_into(sink);
        }
    }

    /// Queues `task` (already assigned to this sub-ring by the main
    /// scheduler) with its instruction stream.
    pub fn enqueue(&mut self, task: Task, stream: Box<dyn InstructionStream + Send>, now: Cycle) {
        self.deadlines.insert(task.id, task.deadline);
        self.pending.insert(task.id, stream);
        self.sched.enqueue(task, now);
    }

    /// Tasks queued in the chain table, not yet bound to a slot.
    pub fn queued(&self) -> usize {
        self.sched.pending()
    }

    /// Tasks currently bound to thread slots.
    pub fn in_flight(&self) -> usize {
        self.dispatched.len()
    }

    /// Whether every queued task has been dispatched and exited.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.dispatched.is_empty()
    }

    /// Whether any task bound to local core `core` is deadline-tight at
    /// `now`: its remaining slack (deadline − now) is below its work
    /// estimate, so every memory round-trip eats directly into laxity.
    /// Criticality routing uses this to elevate the core's demand
    /// traffic.
    pub fn is_deadline_tight(&self, core: usize, now: Cycle) -> bool {
        self.dispatched.iter().any(|(&(c, _slot), &(task, work))| {
            c == core
                && self
                    .deadlines
                    .get(&task)
                    .is_some_and(|&d| d.saturating_sub(now) < work)
        })
    }

    /// Event horizon: the earliest cycle at or after `now` the dispatcher
    /// can act, given whether any local core currently has a vacant slot.
    /// Collection of retirees is covered by the cores' own horizons (a
    /// retired thread makes its core report `Some(now)`), so this only
    /// models the dispatch side: pending tasks plus a vacancy wait for the
    /// chain-table pipeline (`ready_at`); otherwise the dispatcher is
    /// event-driven and an idle [`tick`](Self::tick) mutates nothing.
    pub fn next_event(&self, now: Cycle, vacancy: bool) -> Option<Cycle> {
        if self.sched.pending() > 0 && vacancy {
            Some(now.max(self.ready_at))
        } else {
            None
        }
    }

    /// Recovers from the death of local core `core`: tasks bound to its
    /// slots are re-enqueued in the chain table with their recovered
    /// streams (`(slot, stream)` pairs from [`TcgCore::fail`]) and a
    /// laxity-aware recomputed deadline — restarting from scratch at `now`
    /// needs at least `work` more cycles, so a deadline that would leave
    /// negative laxity is pushed out to `now + work`. Returns
    /// `(redispatched, lost)`: tasks requeued and directly-attached
    /// threads (not dispatcher-managed) whose work is simply gone.
    pub fn fail_core(
        &mut self,
        core: usize,
        now: Cycle,
        streams: Vec<(usize, Box<dyn InstructionStream + Send>)>,
    ) -> (u64, u64) {
        let mut redispatched = 0;
        let mut lost = 0;
        for (slot, stream) in streams {
            let Some((task, work)) = self.dispatched.remove(&(core, slot)) else {
                lost += 1;
                continue;
            };
            let deadline = self.deadlines.get(&task).copied().unwrap_or(Cycle::MAX);
            let recomputed = deadline.max(now.saturating_add(work));
            self.deadlines.insert(task, recomputed);
            if let Some(buf) = self.trace.as_mut() {
                buf.emit(
                    now,
                    EventKind::TaskDispatch {
                        task,
                        laxity: (recomputed - now) as i64 - work as i64,
                        queued: self.sched.pending() as u64 + 1,
                    },
                );
            }
            self.pending.insert(task, stream);
            self.sched
                .enqueue(Task::new(task, now, recomputed, work), now);
            redispatched += 1;
        }
        (redispatched, lost)
    }

    /// One cycle of dispatcher work over this sub-ring's cores: consume
    /// exit signals into `exits`, then bind at most one task to a vacant
    /// slot (the chain-table walk costs dispatch cycles).
    pub fn tick(&mut self, cores: &mut [TcgCore], now: Cycle, exits: &mut Vec<ExitSignal>) {
        // Completions.
        for (c, core) in cores.iter_mut().enumerate() {
            for slot in core.take_retired() {
                if let Some((task, work)) = self.dispatched.remove(&(c, slot)) {
                    let deadline = self.deadlines.remove(&task).unwrap_or(Cycle::MAX);
                    if let Some(buf) = self.trace.as_mut() {
                        buf.emit(
                            now,
                            EventKind::TaskExit {
                                task,
                                deadline_met: now <= deadline,
                            },
                        );
                    }
                    exits.push(ExitSignal {
                        task,
                        exit: now,
                        deadline,
                        work,
                    });
                }
            }
        }
        // Dispatch.
        if now < self.ready_at || self.sched.pending() == 0 {
            return;
        }
        let Some(core_idx) = (0..cores.len()).find(|&c| cores[c].has_vacancy()) else {
            return;
        };
        if let Some(task) = self.sched.dispatch(now) {
            self.ready_at = now + self.sched.overhead();
            let stream = self.pending.remove(&task.id).expect("stream pending");
            let slot = cores[core_idx].attach(stream).expect("vacancy checked");
            if let Some(buf) = self.trace.as_mut() {
                buf.emit(
                    now,
                    EventKind::TaskDispatch {
                        task: task.id,
                        laxity: task.laxity(now),
                        queued: self.sched.pending() as u64,
                    },
                );
            }
            self.dispatched
                .insert((core_idx, slot), (task.id, task.work));
        }
    }
}
