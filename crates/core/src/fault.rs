//! Deterministic fault injection and the recovery budget (§2.1's
//! datacenter reality: "components fail all the time").
//!
//! A [`FaultPlan`] names the faults to inject into one run. Every fault
//! targets a *site* in the modeled hardware:
//!
//! | site        | fault                                                |
//! |-------------|------------------------------------------------------|
//! | `noc::link` | transient flit corruption on sub-ring links          |
//! | `noc::ring` | transient flit corruption on the main ring           |
//! | `mem::dram` | DDR channel stall windows and hard channel death     |
//! | `mem::mact` | MACT deadline-engine lockup (batches stop flushing)  |
//! | `core::tcg` | whole-core failure (threads lost, slots quarantined) |
//!
//! Determinism contract: every injection decision is a pure function of
//! the plan seed and stable identifiers (packet id, retry attempt, fault
//! schedule cycles). Packet ids are allocated with per-shard strides, so
//! the same packet gets the same fate for any PDES worker count, and all
//! scheduled faults publish `next_event` horizons so cycle skipping stays
//! bit-identical with skipping on or off.

use smarco_sim::rng::SimRng;
use smarco_sim::Cycle;

use crate::config::SmarcoConfig;

/// Where in the modeled hardware a fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Sub-ring links (`noc::link`).
    NocLink,
    /// The main ring (`noc::ring`).
    NocRing,
    /// DDR channels (`mem::dram`).
    MemDram,
    /// The MACT deadline engine (`mem::mact`).
    MemMact,
    /// A TCG core (`core::tcg`).
    CoreTcg,
}

impl FaultSite {
    /// The site's stable name, used in lint messages and docs.
    pub fn name(self) -> &'static str {
        match self {
            Self::NocLink => "noc::link",
            Self::NocRing => "noc::ring",
            Self::MemDram => "mem::dram",
            Self::MemMact => "mem::mact",
            Self::CoreTcg => "core::tcg",
        }
    }
}

/// One fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Each sub-ring injection attempt is corrupted (and NACKed back to
    /// the sender) with probability `permille`/1000.
    SubRingNoise {
        /// Corruption probability in units of 1/1000 per attempt.
        permille: u32,
    },
    /// Each main-ring injection attempt is corrupted with probability
    /// `permille`/1000.
    MainRingNoise {
        /// Corruption probability in units of 1/1000 per attempt.
        permille: u32,
    },
    /// DDR channel `channel` accepts no new bursts during
    /// `[at, at + cycles)`; queued requests wait the stall out.
    DramStall {
        /// Channel index.
        channel: usize,
        /// First stalled cycle.
        at: Cycle,
        /// Stall length in cycles.
        cycles: Cycle,
    },
    /// DDR channel `channel` dies at `at`; later requests are remapped to
    /// the next live channel and the dead one is quarantined.
    DramChannelDeath {
        /// Channel index.
        channel: usize,
        /// Cycle of death.
        at: Cycle,
    },
    /// Sub-ring `subring`'s MACT deadline engine locks up during
    /// `[at, at + cycles)`: open lines stop flushing on deadline (full
    /// lines and capacity evictions still flush) until the window ends.
    MactLockup {
        /// Sub-ring whose MACT is hit.
        subring: usize,
        /// First locked cycle.
        at: Cycle,
        /// Lockup length in cycles.
        cycles: Cycle,
    },
    /// TCG core `core` fails at `at`: resident threads are lost, tasks
    /// dispatched to it are re-enqueued with recomputed deadlines, and the
    /// core is quarantined from further dispatch.
    CoreDeath {
        /// Global core index.
        core: usize,
        /// Cycle of death.
        at: Cycle,
    },
}

impl Fault {
    /// The site this fault targets.
    pub fn site(&self) -> FaultSite {
        match self {
            Self::SubRingNoise { .. } => FaultSite::NocLink,
            Self::MainRingNoise { .. } => FaultSite::NocRing,
            Self::DramStall { .. } | Self::DramChannelDeath { .. } => FaultSite::MemDram,
            Self::MactLockup { .. } => FaultSite::MemMact,
            Self::CoreDeath { .. } => FaultSite::CoreTcg,
        }
    }
}

/// Exponent cap for the backoff shift (keeps `base << k` from
/// overflowing for absurd retry budgets).
const MAX_BACKOFF_SHIFT: u32 = 16;

/// The NoC retransmission budget: how many times a corrupted packet is
/// retried and how long the sender backs off before each retry.
///
/// A corrupted injection attempt is NACKed; the sender re-injects after
/// `backoff(k) = base_backoff << k` cycles (exponential). After
/// `max_retries` retries the transient fault is considered cleared and
/// the final attempt always succeeds, so the worst case *delays* a packet
/// by [`RetryPolicy::worst_case_delay`] but never loses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per packet (beyond the initial attempt).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Cycle,
}

impl Default for RetryPolicy {
    /// Three retries starting at 2 cycles: worst case 2 + 4 + 8 = 14
    /// cycles of added delay, inside the default 16-cycle MACT collection
    /// window (see lint SL0415).
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based): `base_backoff << attempt`.
    pub fn backoff(&self, attempt: u32) -> Cycle {
        self.base_backoff.max(1) << attempt.min(MAX_BACKOFF_SHIFT)
    }

    /// Total delay a packet suffers if every allowed retry is needed.
    pub fn worst_case_delay(&self) -> Cycle {
        (0..self.max_retries).map(|k| self.backoff(k)).sum()
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// [`FaultPlan::none`] injects nothing and reproduces a healthy run
/// bit-for-bit; [`FaultPlan::chaos`] draws a representative mixed plan
/// from a seed. Plans are plain data: build one, hand it to
/// [`crate::chip::SmarcoSystem::builder`], and read the damage report
/// from [`crate::report::SmarcoReport::degradation`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    retry: RetryPolicy,
    faults: Vec<Fault>,
}

/// Domain-separation salts for the per-packet corruption hash.
const SALT_SUB: u64 = 0x5355_4252_494e_4753; // "SUBRINGS"
const SALT_MAIN: u64 = 0x4d41_494e_5249_4e47; // "MAINRING"

impl FaultPlan {
    /// An empty plan: no faults, no retries ever needed. A chip built
    /// with this plan behaves exactly like one built with no plan.
    pub fn none() -> Self {
        Self::new(0)
    }

    /// An empty plan carrying `seed`; add faults with
    /// [`FaultPlan::with_fault`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            retry: RetryPolicy::default(),
            faults: Vec::new(),
        }
    }

    /// A representative mixed plan drawn from `seed`: link noise on both
    /// ring levels, one core death, one DDR stall, one channel death
    /// (when more than one channel exists) and one MACT lockup, all
    /// targeting units inside `config`'s geometry.
    pub fn chaos(seed: u64, config: &SmarcoConfig) -> Self {
        let mut rng = SimRng::new(seed);
        let mut plan = Self::new(seed);
        plan.faults.push(Fault::SubRingNoise {
            permille: 20 + rng.gen_range(40) as u32,
        });
        plan.faults.push(Fault::MainRingNoise {
            permille: 10 + rng.gen_range(30) as u32,
        });
        plan.faults.push(Fault::CoreDeath {
            core: rng.gen_index(config.noc.cores()),
            at: 2_000 + rng.gen_range(8_000),
        });
        plan.faults.push(Fault::DramStall {
            channel: rng.gen_index(config.dram.channels),
            at: 1_000 + rng.gen_range(4_000),
            cycles: 1_000 + rng.gen_range(2_000),
        });
        if config.dram.channels > 1 {
            plan.faults.push(Fault::DramChannelDeath {
                channel: rng.gen_index(config.dram.channels),
                at: 20_000 + rng.gen_range(20_000),
            });
        }
        plan.faults.push(Fault::MactLockup {
            subring: rng.gen_index(config.noc.subrings),
            at: 1_000 + rng.gen_range(4_000),
            cycles: 500 + rng.gen_range(1_000),
        });
        plan
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Overrides the retransmission budget (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The retransmission budget.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// The faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.faults.is_empty()
    }

    /// Strongest sub-ring corruption probability (permille per attempt).
    pub fn sub_noise_permille(&self) -> u32 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SubRingNoise { permille } => Some(*permille),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Strongest main-ring corruption probability (permille per attempt).
    pub fn main_noise_permille(&self) -> u32 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::MainRingNoise { permille } => Some(*permille),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether injection attempt `attempt` of packet `packet` is
    /// corrupted on a sub-ring link. Pure in `(seed, packet, attempt)`,
    /// so the verdict is identical for any worker count.
    pub fn corrupts_sub(&self, packet: u64, attempt: u32) -> bool {
        corrupt(
            self.seed,
            SALT_SUB,
            packet,
            attempt,
            self.sub_noise_permille(),
        )
    }

    /// Whether injection attempt `attempt` of packet `packet` is
    /// corrupted on the main ring.
    pub fn corrupts_main(&self, packet: u64, attempt: u32) -> bool {
        corrupt(
            self.seed,
            SALT_MAIN,
            packet,
            attempt,
            self.main_noise_permille(),
        )
    }

    /// Core deaths with `lo <= core < hi`, sorted by `(cycle, core)`.
    pub fn core_kills_in(&self, lo: usize, hi: usize) -> Vec<(Cycle, usize)> {
        let mut kills: Vec<(Cycle, usize)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::CoreDeath { core, at } if (lo..hi).contains(core) => Some((*at, *core)),
                _ => None,
            })
            .collect();
        kills.sort_unstable();
        kills.dedup_by_key(|k| k.1);
        kills
    }

    /// MACT lockup windows `[from, to)` for `subring`, sorted by start.
    pub fn mact_lockups(&self, subring: usize) -> Vec<(Cycle, Cycle)> {
        let mut windows: Vec<(Cycle, Cycle)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::MactLockup {
                    subring: sr,
                    at,
                    cycles,
                } if *sr == subring => Some((*at, at.saturating_add(*cycles))),
                _ => None,
            })
            .collect();
        windows.sort_unstable();
        windows
    }

    /// DDR stall windows as `(channel, from, to)`.
    pub fn dram_stalls(&self) -> Vec<(usize, Cycle, Cycle)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DramStall {
                    channel,
                    at,
                    cycles,
                } => Some((*channel, *at, at.saturating_add(*cycles))),
                _ => None,
            })
            .collect()
    }

    /// Channel deaths as `(channel, cycle)`, earliest death per channel.
    pub fn channel_deaths(&self) -> Vec<(usize, Cycle)> {
        let mut deaths: Vec<(usize, Cycle)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::DramChannelDeath { channel, at } => Some((*channel, *at)),
                _ => None,
            })
            .collect();
        deaths.sort_unstable();
        deaths.dedup_by_key(|d| d.0);
        deaths
    }

    /// Checks every fault targets a unit inside the chip geometry and
    /// carries a sane probability. Mirrors lint SL0414.
    pub fn check_geometry(
        &self,
        cores: usize,
        channels: usize,
        subrings: usize,
    ) -> Result<(), String> {
        for fault in &self.faults {
            match *fault {
                Fault::SubRingNoise { permille } | Fault::MainRingNoise { permille } => {
                    if permille > 1000 {
                        return Err(format!(
                            "{} noise of {permille}\u{2030} exceeds certainty (1000\u{2030})",
                            fault.site().name()
                        ));
                    }
                }
                Fault::DramStall { channel, .. } | Fault::DramChannelDeath { channel, .. } => {
                    if channel >= channels {
                        return Err(format!(
                            "{} fault targets channel {channel}, chip has {channels}",
                            fault.site().name()
                        ));
                    }
                }
                Fault::MactLockup { subring, .. } => {
                    if subring >= subrings {
                        return Err(format!(
                            "{} fault targets sub-ring {subring}, chip has {subrings}",
                            fault.site().name()
                        ));
                    }
                }
                Fault::CoreDeath { core, .. } => {
                    if core >= cores {
                        return Err(format!(
                            "{} fault targets core {core}, chip has {cores}",
                            fault.site().name()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The pure corruption verdict: hash `(seed, salt, packet, attempt)` into
/// an RNG and draw once. No shared state, so any shard on any worker
/// reaches the same verdict for the same attempt.
fn corrupt(seed: u64, salt: u64, packet: u64, attempt: u32, permille: u32) -> bool {
    if permille == 0 {
        return false;
    }
    let mut rng = SimRng::new(
        seed ^ salt ^ packet.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 56),
    );
    rng.gen_range(1000) < u64::from(permille)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_exponential() {
        let r = RetryPolicy {
            max_retries: 4,
            base_backoff: 8,
        };
        assert_eq!(r.backoff(0), 8);
        assert_eq!(r.backoff(1), 16);
        assert_eq!(r.backoff(2), 32);
        assert_eq!(r.backoff(3), 64);
        assert_eq!(r.worst_case_delay(), 8 + 16 + 32 + 64);
    }

    #[test]
    fn backoff_shift_is_capped_and_base_floored() {
        let r = RetryPolicy {
            max_retries: 100,
            base_backoff: 0,
        };
        // A zero base still backs off at least one cycle, and the shift
        // saturates instead of overflowing.
        assert_eq!(r.backoff(0), 1);
        assert_eq!(r.backoff(63), 1 << MAX_BACKOFF_SHIFT);
        assert!(r.worst_case_delay() > 0);
    }

    #[test]
    fn default_budget_fits_the_mact_window() {
        let r = RetryPolicy::default();
        assert_eq!(r.worst_case_delay(), 14);
        assert!(r.worst_case_delay() < 16, "must not starve batched lines");
    }

    #[test]
    fn corruption_is_a_pure_function() {
        let plan = FaultPlan::new(7).with_fault(Fault::SubRingNoise { permille: 500 });
        for packet in 0..200u64 {
            for attempt in 0..3 {
                assert_eq!(
                    plan.corrupts_sub(packet, attempt),
                    plan.corrupts_sub(packet, attempt)
                );
            }
        }
        // Roughly half the packets should be corrupted at 500‰.
        let hits = (0..1000u64).filter(|&p| plan.corrupts_sub(p, 0)).count();
        assert!((350..650).contains(&hits), "hits {hits}");
        // The main-ring verdict uses a different salt.
        assert!((0..1000u64).any(|p| plan.corrupts_sub(p, 0) != plan.corrupts_main(p, 0)));
    }

    #[test]
    fn zero_plan_corrupts_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        assert!(!plan.corrupts_sub(1, 0));
        assert!(!plan.corrupts_main(1, 0));
        assert!(plan.core_kills_in(0, usize::MAX).is_empty());
        assert!(plan.channel_deaths().is_empty());
    }

    #[test]
    fn chaos_respects_geometry() {
        let cfg = SmarcoConfig::tiny();
        for seed in 0..32 {
            let plan = FaultPlan::chaos(seed, &cfg);
            assert!(!plan.is_zero());
            plan.check_geometry(cfg.noc.cores(), cfg.dram.channels, cfg.noc.subrings)
                .expect("chaos plans target real units");
        }
    }

    #[test]
    fn geometry_check_rejects_out_of_range_targets() {
        let plan = FaultPlan::new(1).with_fault(Fault::CoreDeath { core: 99, at: 10 });
        assert!(plan.check_geometry(16, 2, 4).is_err());
        let plan = FaultPlan::new(1).with_fault(Fault::DramChannelDeath { channel: 5, at: 10 });
        assert!(plan.check_geometry(16, 2, 4).is_err());
        let plan = FaultPlan::new(1).with_fault(Fault::MactLockup {
            subring: 9,
            at: 0,
            cycles: 5,
        });
        assert!(plan.check_geometry(16, 2, 4).is_err());
        let plan = FaultPlan::new(1).with_fault(Fault::SubRingNoise { permille: 2000 });
        assert!(plan.check_geometry(16, 2, 4).is_err());
    }

    #[test]
    fn per_shard_queries_slice_the_plan() {
        let plan = FaultPlan::new(3)
            .with_fault(Fault::CoreDeath { core: 2, at: 50 })
            .with_fault(Fault::CoreDeath { core: 9, at: 20 })
            .with_fault(Fault::MactLockup {
                subring: 1,
                at: 100,
                cycles: 40,
            })
            .with_fault(Fault::DramStall {
                channel: 0,
                at: 10,
                cycles: 5,
            })
            .with_fault(Fault::DramChannelDeath {
                channel: 1,
                at: 999,
            });
        assert_eq!(plan.core_kills_in(0, 4), vec![(50, 2)]);
        assert_eq!(plan.core_kills_in(4, 12), vec![(20, 9)]);
        assert_eq!(plan.mact_lockups(1), vec![(100, 140)]);
        assert!(plan.mact_lockups(0).is_empty());
        assert_eq!(plan.dram_stalls(), vec![(0, 10, 15)]);
        assert_eq!(plan.channel_deaths(), vec![(1, 999)]);
    }
}
