//! The Thread Core Group core (§3.1, Fig. 5).
//!
//! A TCG core is a 4-wide, 8-stage, in-order superscalar: four thread
//! *pairs*, each with a private dispatcher/ALU/AGU slice, share the
//! front-end — so the core issues up to one instruction per pair per
//! cycle. The LSQ steers each access by address (§3.5.1): SPM-window
//! addresses go to the scratchpad, others to the L1 D-cache. An SPM or
//! D-cache load miss blocks the thread and triggers the in-pair handoff;
//! store misses drain through a store buffer without blocking.
//!
//! Memory-request granularity: demand misses are issued at **access
//! granularity** (the word, not the line) — SmarCo's memory path is built
//! around small discrete requests that the MACT then merges into 64-byte
//! batches; dirty-line writebacks remain line-sized.

use smarco_isa::{InstructionStream, MemRef, Op};
use smarco_mem::cache::{Cache, CacheOutcome};
use smarco_mem::dma::{Dma, DmaConfig};
use smarco_mem::map::{AddressSpace, Region};
use smarco_mem::spm::Spm;
use smarco_sim::obs::{EventKind, TraceBuffer, TraceConfig, Track};
use smarco_sim::stats::{MeanTracker, Ratio};
use smarco_sim::Cycle;

use crate::config::TcgConfig;
use crate::thread::{PairScheduler, ThreadSlot, ThreadState};

/// Why a core asks the uncore for data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Blocking read that missed the D-cache (word granularity).
    CacheFill,
    /// Non-blocking dirty-line writeback (line granularity).
    Writeback,
    /// Non-blocking store that missed (word granularity, write-through).
    WriteThrough,
    /// Blocking read that missed the local SPM (word granularity; the
    /// reply makes the block resident).
    SpmFill,
    /// Blocking access to another core's SPM.
    RemoteSpm {
        /// Owning core.
        owner: usize,
    },
    /// Non-blocking SPM-to-SPM DMA pull from another core (§3.5.1); the
    /// data travels the rings and lands via [`TcgCore::dma_complete`].
    DmaPull {
        /// Core whose SPM holds the source data.
        owner: usize,
        /// Local SPM `(offset, bytes)` made resident on arrival.
        fill: Option<(u64, u64)>,
    },
}

/// Error returned by [`TcgCore::attach`] when every thread slot is live;
/// carries the rejected stream so the caller can retry elsewhere.
pub struct CoreFull(Box<dyn InstructionStream + Send>);

impl CoreFull {
    /// Recovers the rejected stream.
    pub fn into_stream(self) -> Box<dyn InstructionStream + Send> {
        self.0
    }
}

impl std::fmt::Debug for CoreFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CoreFull(..)")
    }
}

impl std::fmt::Display for CoreFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("every thread slot on the core is occupied")
    }
}

impl std::error::Error for CoreFull {}

/// A memory request leaving the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreRequest {
    /// Issuing thread slot.
    pub thread: usize,
    /// The architectural access.
    pub mem: MemRef,
    /// Bytes the uncore must move.
    pub span_bytes: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Whether the thread blocks until [`TcgCore::complete`].
    pub blocking: bool,
    /// Which path produced it.
    pub kind: RequestKind,
}

/// Aggregated core statistics.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Cycles ticked.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Pair-cycles with no runnable active thread (idle issue slots —
    /// Fig. 1a's "idle ratio" analogue).
    pub idle_pair_cycles: u64,
    /// Pair-cycles spent in stall windows (hit latencies, branch refill).
    pub stall_pair_cycles: u64,
    /// Instruction fetches by hit/miss (I-starvation, Fig. 1b analogue).
    pub ifetch: Ratio,
    /// Fetches served from the prefetched shared instruction segment.
    pub iseg_fetches: u64,
    /// Blocking miss events.
    pub block_events: u64,
    /// Cycles blocked threads waited for memory.
    pub block_latency: MeanTracker,
    /// Branches by predicted/mispredicted.
    pub branches: Ratio,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of pair-slots idle.
    pub fn idle_ratio(&self, pairs: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.idle_pair_cycles as f64 / (self.cycles * pairs as u64) as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct DmaJob {
    thread: usize,
    /// Local SPM range made resident on completion.
    fill: Option<(u64, u64)>,
    iseg: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IsegState {
    Absent,
    Prefetching,
    Resident,
}

/// Per-thread blocking bookkeeping: blocked-at cycle plus an optional
/// pending SPM fill `(addr, bytes)`.
type BlockInfo = (Cycle, Option<(u64, u64)>);

/// One TCG core.
///
/// # Examples
///
/// ```
/// use smarco_core::tcg::TcgCore;
/// use smarco_core::config::TcgConfig;
/// use smarco_mem::map::AddressSpace;
/// use smarco_isa::mix::compute_only;
///
/// let mut core = TcgCore::new(0, TcgConfig::smarco(), AddressSpace::new(4, 2));
/// core.attach(Box::new(compute_only(50)))?;
/// let mut out = Vec::new();
/// for now in 0..1_000 {
///     core.tick(now, &mut out);
/// }
/// assert!(core.is_done());
/// assert_eq!(core.stats().instructions, 51);
/// # Ok::<(), smarco_core::tcg::CoreFull>(())
/// ```
pub struct TcgCore {
    id: usize,
    config: TcgConfig,
    space: AddressSpace,
    l1i: Cache,
    /// L1 data cache (public for whole-chip statistics).
    l1d: Cache,
    spm: Spm,
    dma: Dma<DmaJob>,
    slots: Vec<ThreadSlot>,
    pairs: PairScheduler,
    /// Per-slot: cycle the blocking request was issued (latency stats) and
    /// the SPM range to fill on completion.
    block_info: Vec<Option<BlockInfo>>,
    iseg: Option<(u64, u64)>,
    iseg_state: IsegState,
    /// Thread slots that exited since the last [`take_retired`] call —
    /// the completion signal the chip's task dispatcher consumes.
    retired: Vec<usize>,
    /// Cleared by [`fail`](Self::fail): a dead core accepts no work,
    /// issues nothing, and reports no horizon. Its statistics freeze at
    /// the cycle of death.
    alive: bool,
    stats: CoreStats,
    /// Observability staging buffer; `None` (default) keeps every hook a
    /// single branch with no side effects.
    trace: Option<TraceBuffer>,
    /// Retires per `instr_retire` trace event.
    retire_sample: u64,
    /// Retires accumulated toward the next sampled event.
    retire_pending: u64,
}

impl std::fmt::Debug for TcgCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcgCore")
            .field("id", &self.id)
            .field("live_threads", &self.live_threads())
            .field("instructions", &self.stats.instructions)
            .finish()
    }
}

impl TcgCore {
    /// Creates core `id` in `space` with no threads attached.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `id` is outside `space`.
    pub fn new(id: usize, config: TcgConfig, space: AddressSpace) -> Self {
        config.validate();
        assert!(id < space.cores(), "core id {id} outside address space");
        let slots = (0..config.resident_threads)
            .map(|_| ThreadSlot::vacant())
            .collect();
        Self {
            id,
            config,
            space,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            spm: Spm::new(),
            dma: Dma::new(DmaConfig::default()),
            slots,
            pairs: PairScheduler::new(config.pairs, config.in_pair),
            block_info: vec![None; config.resident_threads],
            iseg: None,
            iseg_state: IsegState::Absent,
            retired: Vec::new(),
            alive: true,
            stats: CoreStats::default(),
            trace: None,
            retire_sample: 64,
            retire_pending: 0,
        }
    }

    /// Turns event tracing on for this core; the parent drains the buffer
    /// via [`trace_mut`](Self::trace_mut).
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        self.trace = Some(TraceBuffer::new(Track::Core(self.id)));
        self.retire_sample = cfg.retire_sample.max(1);
    }

    /// The core's trace staging buffer, if tracing is enabled.
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.trace.as_mut()
    }

    /// Core id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Configuration.
    pub fn config(&self) -> TcgConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The core's scratchpad (e.g. for the runtime to stage data).
    pub fn spm_mut(&mut self) -> &mut Spm {
        &mut self.spm
    }

    /// The scratchpad, read-only.
    pub fn spm(&self) -> &Spm {
        &self.spm
    }

    /// D-cache statistics.
    pub fn l1d_stats(&self) -> smarco_mem::cache::CacheStats {
        self.l1d.stats()
    }

    /// Threads that are attached and not yet done.
    pub fn live_threads(&self) -> usize {
        self.slots.iter().filter(|s| s.is_live()).count()
    }

    /// Whether every attached thread has exited and no DMA is in flight.
    /// A dead core is always done: whatever it was running is gone.
    pub fn is_done(&self) -> bool {
        !self.alive || (self.live_threads() == 0 && !self.dma.is_busy())
    }

    /// Whether the core is still functional (not killed by fault
    /// injection).
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Kills the core (fault site `core::tcg`): every live thread's
    /// unfinished stream is ripped out and returned as `(slot, stream)`
    /// pairs for the dispatcher to re-run elsewhere, in-flight DMA is
    /// abandoned, and the core stops accepting work, issuing, and
    /// publishing horizons. Idempotent — a second kill returns nothing.
    pub fn fail(&mut self) -> Vec<(usize, Box<dyn InstructionStream + Send>)> {
        if !self.alive {
            return Vec::new();
        }
        self.alive = false;
        self.retired.clear();
        self.dma = Dma::new(DmaConfig::default());
        self.iseg = None;
        self.iseg_state = IsegState::Absent;
        let mut streams = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(stream) = slot.take_stream() {
                streams.push((i, stream));
            }
            self.block_info[i] = None;
        }
        streams
    }

    /// Attaches `stream` to the first vacant slot; returns the slot index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreFull`] (which hands the stream back via
    /// [`CoreFull::into_stream`]) when every slot is occupied by a live
    /// thread.
    pub fn attach(&mut self, stream: Box<dyn InstructionStream + Send>) -> Result<usize, CoreFull> {
        if !self.alive {
            return Err(CoreFull(stream));
        }
        let Some(idx) = self.slots.iter().position(|s| !s.is_live()) else {
            return Err(CoreFull(stream));
        };
        self.slots[idx].attach(stream);
        // Re-arm the pair: if its issue slot is parked on a dead thread
        // (both threads exited, the newcomer reuses the non-active slot),
        // the pair would never issue again — `tick` and `next_event` only
        // look at the active thread. `on_unblock` hands the slot to the
        // newcomer, or parks it Ready behind a live, active friend.
        let p = self.pairs.pair_of(idx);
        let active = self.pairs.active_thread(p);
        if active != idx && (active >= self.slots.len() || !self.slots[active].is_live()) {
            self.pairs.on_unblock(idx, &mut self.slots);
        }
        self.maybe_prefetch_iseg();
        Ok(idx)
    }

    /// Starts the shared-instruction-segment prefetch when every live
    /// thread reports the same segment (§3.1.2).
    fn maybe_prefetch_iseg(&mut self) {
        if !self.config.shared_iseg || self.iseg_state != IsegState::Absent {
            return;
        }
        let mut seg = None;
        for s in self.slots.iter().filter(|s| s.is_live()) {
            match (seg, s.segment()) {
                (_, None) => return, // a thread without a segment: no sharing
                (None, Some(x)) => seg = Some(x),
                (Some(a), Some(b)) if a == b => {}
                _ => return, // differing segments
            }
        }
        let Some((base, bytes)) = seg else { return };
        // Segment must fit the SPM alongside data (use it as-is; the
        // runtime sizes segments conservatively).
        if bytes == 0 || bytes > Spm::data_bytes() / 4 {
            return;
        }
        self.iseg = Some((base, bytes));
        self.iseg_state = IsegState::Prefetching;
        self.dma.start(
            bytes,
            DmaJob {
                thread: usize::MAX,
                fill: None,
                iseg: true,
            },
        );
    }

    fn iseg_covers(&self, pc: u64) -> bool {
        self.iseg_state == IsegState::Resident
            && self
                .iseg
                .is_some_and(|(base, bytes)| (base..base + bytes).contains(&pc))
    }

    fn block(&mut self, thread: usize, now: Cycle, spm_fill: Option<(u64, u64)>) {
        self.slots[thread].state = ThreadState::Blocked;
        self.block_info[thread] = Some((now, spm_fill));
        self.stats.block_events += 1;
        let p = self.pairs.pair_of(thread);
        // Pre-switch snapshot only matters to the trace; keep the disabled
        // path free of the extra scheduler query.
        let before = self.trace.is_some().then(|| self.pairs.active_thread(p));
        let _ = self.pairs.on_block(p, &mut self.slots);
        if let (Some(tb), Some(before)) = (self.trace.as_mut(), before) {
            tb.emit(now, EventKind::ThreadBlock { thread });
            let after = self.pairs.active_thread(p);
            if after != before && after < self.slots.len() {
                tb.emit(
                    now,
                    EventKind::ThreadSwap {
                        pair: p,
                        from: before,
                        to: after,
                    },
                );
            }
        }
    }

    /// Completes a ring-travelled DMA transfer for `thread`: marks the
    /// destination range resident and releases a pending `Sync`.
    pub fn dma_complete(&mut self, thread: usize, fill: Option<(u64, u64)>) {
        if let Some((offset, bytes)) = fill {
            self.spm.make_resident(offset, bytes.max(1));
        }
        let slot = &mut self.slots[thread];
        slot.pending_dma = slot.pending_dma.saturating_sub(1);
        if slot.pending_dma == 0
            && slot.state == ThreadState::Blocked
            && self.block_info[thread].is_none()
        {
            self.pairs.on_unblock(thread, &mut self.slots);
        }
    }

    /// Delivers the reply to a blocking request issued by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the thread was not blocked on memory.
    pub fn complete(&mut self, thread: usize, now: Cycle) {
        let (since, fill) = self.block_info[thread]
            .take()
            .unwrap_or_else(|| panic!("thread {thread} was not blocked on memory"));
        self.stats
            .block_latency
            .record(now.saturating_sub(since) as f64);
        if let Some((offset, bytes)) = fill {
            self.spm.make_resident(offset, bytes);
        }
        self.pairs.on_unblock(thread, &mut self.slots);
    }

    fn retire_thread(&mut self, thread: usize) {
        self.slots[thread].state = ThreadState::Done;
        self.retired.push(thread);
        let p = self.pairs.pair_of(thread);
        let _ = self.pairs.on_block(p, &mut self.slots);
    }

    /// Drains the slots whose threads exited since the last call (the
    /// hardware scheduler's completion signal, §3.7).
    pub fn take_retired(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.retired)
    }

    /// Whether the core has a vacant thread slot. A dead core never does:
    /// quarantine means the dispatcher stops binding work to it.
    pub fn has_vacancy(&self) -> bool {
        self.alive && self.slots.iter().any(|s| !s.is_live())
    }

    /// Event horizon: the earliest cycle at or after `now` at which the
    /// core can act — hand out retired slots, progress its DMA engine, or
    /// issue from a runnable pair once its stall window ends. `None` when
    /// every pair is parked: blocked threads wake only through
    /// [`complete`](Self::complete)/[`dma_complete`](Self::dma_complete),
    /// which the owning shard accounts for via its inbox and uncore
    /// horizons.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.alive {
            return None;
        }
        if !self.retired.is_empty() || self.dma.is_busy() {
            // Retirees are collected by the dispatcher next tick; the DMA
            // engine makes per-call progress, so it must be ticked.
            return Some(now);
        }
        let mut horizon: Option<Cycle> = None;
        for p in 0..self.pairs.pairs() {
            let t = self.pairs.active_thread(p);
            if t >= self.slots.len() {
                continue;
            }
            if self.slots[t].state == ThreadState::Runnable {
                let at = now.max(self.slots[t].stall_until);
                horizon = Some(horizon.map_or(at, |h| h.min(at)));
            }
        }
        horizon
    }

    /// Fast-forwards the core across `[from, to)`, a range in which
    /// [`next_event`](Self::next_event) proved no pair can issue. Every
    /// cycle is charged exactly as [`tick`](Self::tick) would have charged
    /// it: a stall pair-cycle for runnable-but-stalled pairs, an idle
    /// pair-cycle otherwise, and one core cycle either way.
    ///
    /// Debug builds re-scan the real thread state — a `next_event`
    /// implementation reporting a too-late horizon panics here instead of
    /// silently corrupting statistics.
    pub fn skip(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(from < to, "empty skip range");
        if !self.alive {
            return;
        }
        debug_assert!(
            self.retired.is_empty(),
            "cycle-skipped a core with retired threads to hand out"
        );
        debug_assert!(
            !self.dma.is_busy(),
            "cycle-skipped a core with an active DMA engine"
        );
        let cycles = to - from;
        self.stats.cycles += cycles;
        for p in 0..self.pairs.pairs() {
            let t = self.pairs.active_thread(p);
            if t >= self.slots.len() {
                self.stats.idle_pair_cycles += cycles;
                continue;
            }
            if self.slots[t].state == ThreadState::Runnable {
                debug_assert!(
                    self.slots[t].stall_until >= to,
                    "cycle-skipped past thread {t}'s stall end ({} < {to})",
                    self.slots[t].stall_until
                );
                self.stats.stall_pair_cycles += cycles;
            } else {
                self.stats.idle_pair_cycles += cycles;
            }
        }
    }

    /// Advances one cycle, pushing outgoing memory requests into `out`.
    /// A dead core is inert: nothing issues and nothing is charged.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<CoreRequest>) {
        if !self.alive {
            return;
        }
        self.stats.cycles += 1;
        // DMA completions.
        for job in self.dma.tick() {
            if job.iseg {
                self.iseg_state = IsegState::Resident;
                continue;
            }
            if let Some((offset, bytes)) = job.fill {
                self.spm.make_resident(offset, bytes);
            }
            if job.thread != usize::MAX {
                if let Some(tb) = self.trace.as_mut() {
                    tb.emit(now, EventKind::DmaComplete { thread: job.thread });
                }
                let slot = &mut self.slots[job.thread];
                slot.pending_dma = slot.pending_dma.saturating_sub(1);
                if slot.pending_dma == 0
                    && slot.state == ThreadState::Blocked
                    && self.block_info[job.thread].is_none()
                {
                    // Blocked on Sync, not on memory.
                    self.pairs.on_unblock(job.thread, &mut self.slots);
                }
            }
        }
        // Issue one instruction per pair.
        for p in 0..self.pairs.pairs() {
            let t = self.pairs.active_thread(p);
            if t >= self.slots.len() {
                self.stats.idle_pair_cycles += 1;
                continue;
            }
            match self.slots[t].state {
                ThreadState::Runnable if self.slots[t].stall_until <= now => {
                    self.issue(t, p, now, out);
                }
                ThreadState::Runnable => self.stats.stall_pair_cycles += 1,
                _ => self.stats.idle_pair_cycles += 1,
            }
        }
    }

    fn issue(&mut self, t: usize, p: usize, now: Cycle, out: &mut Vec<CoreRequest>) {
        let Some(instr) = self.slots[t].next_instr() else {
            self.retire_thread(t);
            return;
        };
        // Instruction fetch.
        if self.iseg_covers(instr.pc) {
            self.stats.iseg_fetches += 1;
        } else {
            let hit = self.l1i.access(instr.pc, false).is_hit();
            self.stats.ifetch.record(hit);
            if !hit {
                self.slots[t].stall_until = now + self.config.icache_miss_penalty;
                if let Some(tb) = self.trace.as_mut() {
                    tb.emit(
                        now,
                        EventKind::CacheMiss {
                            addr: instr.pc,
                            ifetch: true,
                        },
                    );
                }
            }
        }
        self.stats.instructions += 1;
        self.slots[t].instructions += 1;
        if let Some(tb) = self.trace.as_mut() {
            self.retire_pending += 1;
            if self.retire_pending >= self.retire_sample {
                tb.emit(
                    now,
                    EventKind::InstrRetire {
                        count: self.retire_pending,
                    },
                );
                self.retire_pending = 0;
            }
        }
        let _ = p;
        match instr.op {
            Op::Compute { latency } => {
                self.slots[t].stall_until =
                    self.slots[t].stall_until.max(now + Cycle::from(latency));
            }
            Op::Branch { mispredicted } => {
                self.stats.branches.record(!mispredicted);
                let cost = if mispredicted {
                    self.config.pipeline_depth
                } else {
                    1
                };
                self.slots[t].stall_until = self.slots[t].stall_until.max(now + cost);
            }
            Op::Exit => self.retire_thread(t),
            Op::Sync => {
                if self.slots[t].pending_dma > 0 {
                    self.slots[t].state = ThreadState::Blocked;
                    let _ = self.pairs.on_block(self.pairs.pair_of(t), &mut self.slots);
                } else {
                    self.slots[t].stall_until = now + 1;
                }
            }
            Op::Dma { src, dst, bytes } => {
                let fill = match self.space.classify(dst) {
                    Region::Spm { core, offset } if core == self.id => {
                        Some((offset, u64::from(bytes).min(Spm::data_bytes() - offset)))
                    }
                    _ => None,
                };
                if let Some(tb) = self.trace.as_mut() {
                    tb.emit(
                        now,
                        EventKind::DmaStart {
                            bytes: u64::from(bytes),
                        },
                    );
                }
                self.slots[t].pending_dma += 1;
                self.slots[t].stall_until = now + 1;
                match self.space.classify(src) {
                    // SPM-to-SPM transfer from another core (§3.5.1): the
                    // data must actually cross the rings — the uncore
                    // fetches it and completes via `dma_complete`.
                    Region::Spm { core: owner, .. } | Region::SpmCtrl { core: owner, .. }
                        if owner != self.id =>
                    {
                        out.push(CoreRequest {
                            thread: t,
                            mem: MemRef::new(src, 64),
                            span_bytes: u64::from(bytes.max(1)),
                            is_write: false,
                            blocking: false,
                            kind: RequestKind::DmaPull { owner, fill },
                        });
                    }
                    // Local/DRAM source: the core's own engine streams it.
                    _ => {
                        self.dma.start(
                            u64::from(bytes.max(1)),
                            DmaJob {
                                thread: t,
                                fill,
                                iseg: false,
                            },
                        );
                    }
                }
            }
            Op::Load(m) => self.load(t, m, now, out),
            Op::Store(m) => self.store(t, m, now, out),
        }
    }

    fn load(&mut self, t: usize, m: MemRef, now: Cycle, out: &mut Vec<CoreRequest>) {
        match self.space.classify(m.addr) {
            Region::Spm { core, offset } if core == self.id => {
                if self.spm.access(offset, u64::from(m.bytes)) {
                    self.slots[t].stall_until = now + self.config.spm_latency;
                } else {
                    self.block(t, now, Some((offset, u64::from(m.bytes))));
                    out.push(CoreRequest {
                        thread: t,
                        mem: m,
                        span_bytes: u64::from(m.bytes),
                        is_write: false,
                        blocking: true,
                        kind: RequestKind::SpmFill,
                    });
                }
            }
            Region::Spm { core, .. } | Region::SpmCtrl { core, .. } if core != self.id => {
                self.block(t, now, None);
                out.push(CoreRequest {
                    thread: t,
                    mem: m,
                    span_bytes: u64::from(m.bytes),
                    is_write: false,
                    blocking: true,
                    kind: RequestKind::RemoteSpm { owner: core },
                });
            }
            Region::SpmCtrl { .. } => {
                // Local DMA control registers: plain register read.
                self.slots[t].stall_until = now + 1;
            }
            Region::Dram { .. } => match self.l1d.access(m.addr, false) {
                CacheOutcome::Hit => {
                    self.slots[t].stall_until = now + self.config.cache_hit_latency;
                }
                CacheOutcome::Miss { writeback_of } => {
                    if let Some(victim) = writeback_of {
                        out.push(self.writeback(victim));
                    }
                    if let Some(tb) = self.trace.as_mut() {
                        tb.emit(
                            now,
                            EventKind::CacheMiss {
                                addr: m.addr,
                                ifetch: false,
                            },
                        );
                    }
                    self.block(t, now, None);
                    out.push(CoreRequest {
                        thread: t,
                        mem: m,
                        span_bytes: u64::from(m.bytes),
                        is_write: false,
                        blocking: true,
                        kind: RequestKind::CacheFill,
                    });
                }
            },
            Region::Spm { .. } => unreachable!("guards cover all SPM cases"),
            Region::Unmapped => {
                panic!("core {}: load from unmapped address {:#x}", self.id, m.addr)
            }
        }
    }

    fn store(&mut self, t: usize, m: MemRef, now: Cycle, out: &mut Vec<CoreRequest>) {
        match self.space.classify(m.addr) {
            Region::Spm { core, offset } if core == self.id => {
                // SPM is explicitly managed local memory: a store defines
                // the bytes in place (write-allocate without fetch) and
                // nothing travels to DRAM until software DMAs it out.
                if !self.spm.access(offset, u64::from(m.bytes)) {
                    self.spm.make_resident(offset, u64::from(m.bytes));
                }
                self.slots[t].stall_until = now + self.config.spm_latency;
            }
            Region::Spm { core, .. } | Region::SpmCtrl { core, .. } if core != self.id => {
                self.block(t, now, None);
                out.push(CoreRequest {
                    thread: t,
                    mem: m,
                    span_bytes: u64::from(m.bytes),
                    is_write: true,
                    blocking: true,
                    kind: RequestKind::RemoteSpm { owner: core },
                });
            }
            Region::SpmCtrl { .. } => {
                self.slots[t].stall_until = now + 1;
            }
            Region::Dram { .. } => {
                // Streaming (non-allocating) store: HTC output is written
                // once and not re-read by this core, so a miss does not
                // claim a line — the small write drains downstream, where
                // the MACT merges neighbouring writes into one burst.
                let hit = self.l1d.write_no_allocate(m.addr);
                self.slots[t].stall_until = now + self.config.cache_hit_latency;
                if !hit {
                    out.push(CoreRequest {
                        thread: t,
                        mem: m,
                        span_bytes: u64::from(m.bytes),
                        is_write: true,
                        blocking: false,
                        kind: RequestKind::WriteThrough,
                    });
                }
            }
            Region::Spm { .. } => unreachable!("guards cover all SPM cases"),
            Region::Unmapped => {
                panic!("core {}: store to unmapped address {:#x}", self.id, m.addr)
            }
        }
    }

    fn writeback(&self, victim_line: u64) -> CoreRequest {
        CoreRequest {
            thread: usize::MAX,
            mem: MemRef::new(victim_line, 64),
            span_bytes: self.config.l1d.line_bytes,
            is_write: true,
            blocking: false,
            kind: RequestKind::Writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::mix::{compute_only, AddressModel, GranularityMix, OpMix, SyntheticStream};
    use smarco_isa::{Op, ProgramBuilder};
    use smarco_sim::rng::SimRng;

    fn space() -> AddressSpace {
        AddressSpace::new(4, 2)
    }

    fn core() -> TcgCore {
        TcgCore::new(0, TcgConfig::smarco(), space())
    }

    /// Runs the core, auto-completing blocking requests after `mem_lat`
    /// cycles; returns elapsed cycles.
    fn run(core: &mut TcgCore, mem_lat: Cycle, max: Cycle) -> Cycle {
        let mut out = Vec::new();
        let mut pending: Vec<(Cycle, usize)> = Vec::new();
        for now in 0..max {
            if core.is_done() && pending.is_empty() {
                return now;
            }
            pending.retain(|&(due, t)| {
                if due <= now {
                    core.complete(t, now);
                    false
                } else {
                    true
                }
            });
            out.clear();
            core.tick(now, &mut out);
            for r in &out {
                if r.blocking {
                    pending.push((now + mem_lat, r.thread));
                }
            }
        }
        panic!("core did not finish in {max} cycles");
    }

    #[test]
    fn compute_only_thread_reaches_ipc_one_per_pair() {
        let mut c = core();
        c.attach(Box::new(compute_only(1000))).unwrap();
        run(&mut c, 10, 10_000);
        let ipc = c.stats().ipc();
        assert!(ipc > 0.9 && ipc <= 1.01, "single-thread ipc {ipc}");
    }

    #[test]
    fn attach_into_a_fully_drained_pair_rearms_issue() {
        let mut c = core();
        // Drain every pair completely: each ends with both threads Done
        // and the issue slot parked on the friend (the last to exit).
        for _ in 0..8 {
            c.attach(Box::new(compute_only(50))).unwrap();
        }
        run(&mut c, 10, 10_000);
        let _ = c.take_retired();
        // A new task reuses the primary slot of the parked pair. Before
        // attach re-armed the pair scheduler this thread was Runnable but
        // never active: no horizon, no issue, hung forever.
        c.attach(Box::new(compute_only(50))).unwrap();
        assert!(
            c.next_event(0).is_some(),
            "re-armed pair must publish a horizon"
        );
        run(&mut c, 10, 10_000);
        assert!(c.is_done());
    }

    #[test]
    fn four_threads_scale_ipc_linearly() {
        let mut c = core();
        for _ in 0..4 {
            c.attach(Box::new(compute_only(1000))).unwrap();
        }
        run(&mut c, 10, 10_000);
        let ipc = c.stats().ipc();
        assert!(ipc > 3.5, "4-thread ipc {ipc}");
    }

    #[test]
    fn spm_hits_are_fast_and_unblocking() {
        let mut c = core();
        let base = space().spm_base(0);
        c.spm_mut().make_resident(0, 4096);
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::load(base + 64, 8))
            .op(Op::compute())
            .repeat(100)
            .build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        run(&mut c, 10, 10_000);
        assert_eq!(c.stats().block_events, 0);
        assert_eq!(c.spm().stats().accesses.hits(), 100);
    }

    #[test]
    fn spm_miss_blocks_and_fill_makes_resident() {
        let mut c = core();
        let base = space().spm_base(0);
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::load(base + 128, 8))
            .op(Op::load(base + 128, 8))
            .build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        run(&mut c, 20, 10_000);
        assert_eq!(c.stats().block_events, 1, "second load hits after fill");
        assert!(c.stats().block_latency.mean() >= 20.0);
    }

    #[test]
    fn dram_load_miss_emits_word_granularity_request() {
        let mut c = core();
        let prog = ProgramBuilder::at(0x1000).op(Op::load(0x10_000, 2)).build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        let mut out = Vec::new();
        c.tick(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, RequestKind::CacheFill);
        assert_eq!(out[0].span_bytes, 2, "request at access granularity");
        assert!(out[0].blocking);
        c.complete(out[0].thread, 50);
        run(&mut c, 10, 1000);
    }

    #[test]
    fn store_miss_is_non_blocking_write_through() {
        let mut c = core();
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::store(0x20_000, 4))
            .op(Op::compute())
            .build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        let mut out = Vec::new();
        c.tick(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, RequestKind::WriteThrough);
        assert!(!out[0].blocking);
        assert_eq!(c.stats().block_events, 0);
    }

    #[test]
    fn in_pair_switch_hides_memory_latency() {
        // Two memory-heavy threads: paired they should overlap blocking.
        let mix = OpMix {
            mem_frac: 0.5,
            load_frac: 1.0,
            branch_frac: 0.0,
            branch_miss: 0.0,
            realtime_frac: 0.0,
            granularity: GranularityMix::new([0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
            addresses: AddressModel::random(0x100_000, 1 << 22), // cache-hostile
        };
        let run_pairless = {
            let mut c = TcgCore::new(
                0,
                TcgConfig {
                    in_pair: false,
                    ..TcgConfig::smarco()
                },
                space(),
            );
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(1),
            )))
            .unwrap();
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(2),
            )))
            .unwrap();
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(3),
            )))
            .unwrap();
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(4),
            )))
            .unwrap();
            // Friends (threads 5..8) share pairs with 1..4.
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(5),
            )))
            .unwrap();
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(6),
            )))
            .unwrap();
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(7),
            )))
            .unwrap();
            c.attach(Box::new(SyntheticStream::new(
                mix.clone(),
                2000,
                SimRng::new(8),
            )))
            .unwrap();
            run(&mut c, 100, 20_000_000);
            c.stats().ipc()
        };
        let run_paired = {
            let mut c = TcgCore::new(0, TcgConfig::smarco(), space());
            for seed in 1..=8 {
                c.attach(Box::new(SyntheticStream::new(
                    mix.clone(),
                    2000,
                    SimRng::new(seed),
                )))
                .unwrap();
            }
            run(&mut c, 100, 20_000_000);
            c.stats().ipc()
        };
        assert!(
            run_paired > run_pairless * 1.3,
            "in-pair ipc {run_paired:.3} vs coarse {run_pairless:.3}"
        );
    }

    #[test]
    fn shared_iseg_prefetch_eliminates_icache_misses() {
        // Streams with a shared large segment: without prefetch the 24 KB
        // segment thrashes the 16 KB I-cache.
        let seg_bytes = 24 << 10;
        let make = |seed| {
            let mix = OpMix {
                mem_frac: 0.0,
                load_frac: 0.5,
                branch_frac: 0.0,
                branch_miss: 0.0,
                realtime_frac: 0.0,
                granularity: GranularityMix::uniform(),
                addresses: AddressModel::random(0x100_000, 1 << 20),
            };
            Box::new(
                SyntheticStream::new(mix, 20_000, SimRng::new(seed))
                    .with_segment(0x40_000, seg_bytes),
            )
        };
        let miss_with = {
            let mut c = core();
            for s in 0..4 {
                c.attach(make(s)).unwrap();
            }
            run(&mut c, 30, 10_000_000);
            // After prefetch completes, fetches bypass the I-cache.
            assert!(c.stats().iseg_fetches > 0);
            c.stats().ifetch.total()
        };
        let miss_without = {
            let mut c = TcgCore::new(
                0,
                TcgConfig {
                    shared_iseg: false,
                    ..TcgConfig::smarco()
                },
                space(),
            );
            for s in 0..4 {
                c.attach(make(s)).unwrap();
            }
            run(&mut c, 30, 10_000_000);
            assert_eq!(c.stats().iseg_fetches, 0);
            c.stats().ifetch.hits() // just exercise the accessor
        };
        let _ = miss_without;
        // With prefetch, the bulk of fetches avoid the I-cache entirely.
        assert!(
            miss_with < 85_000,
            "I-cache fetch count with prefetch: {miss_with}"
        );
    }

    #[test]
    fn dma_and_sync_complete() {
        let mut c = core();
        let base = space().spm_base(0);
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::Dma {
                src: 0x50_000,
                dst: base,
                bytes: 1024,
            })
            .op(Op::Sync)
            .op(Op::load(base + 512, 8)) // resident after DMA
            .build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        run(&mut c, 10, 100_000);
        assert_eq!(c.stats().block_events, 0, "post-DMA load hits SPM");
    }

    #[test]
    fn mispredicted_branches_cost_pipeline_depth() {
        let mut fast = core();
        let prog = ProgramBuilder::at(0)
            .op(Op::Branch {
                mispredicted: false,
            })
            .repeat(500)
            .build();
        fast.attach(Box::new(prog.into_stream())).unwrap();
        let t_fast = run(&mut fast, 10, 100_000);
        let mut slow = core();
        let prog = ProgramBuilder::at(0)
            .op(Op::Branch { mispredicted: true })
            .repeat(500)
            .build();
        slow.attach(Box::new(prog.into_stream())).unwrap();
        let t_slow = run(&mut slow, 10, 100_000);
        assert!(
            t_slow > t_fast * 4,
            "mispredicts {t_slow} vs predicted {t_fast}"
        );
        assert!(slow.stats().branches.ratio() < 0.01);
    }

    #[test]
    fn attach_fails_when_full() {
        let mut c = core();
        for _ in 0..8 {
            c.attach(Box::new(compute_only(10))).unwrap();
        }
        assert!(c.attach(Box::new(compute_only(10))).is_err());
    }

    #[test]
    fn remote_spm_access_goes_to_owner() {
        let mut c = core();
        let remote_base = space().spm_base(2);
        let prog = ProgramBuilder::at(0)
            .op(Op::load(remote_base + 8, 8))
            .build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        let mut out = Vec::new();
        c.tick(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, RequestKind::RemoteSpm { owner: 2 });
        c.complete(out[0].thread, 40);
        run(&mut c, 10, 1000);
    }

    #[test]
    #[should_panic(expected = "unmapped address")]
    fn unmapped_access_panics() {
        let mut c = core();
        let prog = ProgramBuilder::at(0).op(Op::load(u64::MAX / 2, 4)).build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        let mut out = Vec::new();
        c.tick(0, &mut out);
    }

    #[test]
    fn skip_matches_ticking_through_stall_windows() {
        let mk = || {
            let mut c = core();
            let prog = ProgramBuilder::at(0x1000)
                .op(Op::Compute { latency: 40 })
                .op(Op::compute())
                .op(Op::Compute { latency: 25 })
                .build();
            c.attach(Box::new(prog.into_stream())).unwrap();
            c
        };
        let mut ticked = mk();
        let mut skipped = mk();
        let mut out = Vec::new();
        for now in 0..200 {
            ticked.tick(now, &mut out);
        }
        assert!(out.is_empty(), "compute-only program emitted requests");
        // Drive the other core horizon-first: tick only when `next_event`
        // says the cycle matters, fast-forward otherwise.
        let mut now = 0;
        while now < 200 {
            match skipped.next_event(now) {
                Some(h) if h > now => {
                    skipped.skip(now, h.min(200));
                    now = h.min(200);
                }
                Some(_) => {
                    skipped.tick(now, &mut out);
                    now += 1;
                }
                None => {
                    skipped.skip(now, 200);
                    now = 200;
                }
            }
        }
        assert!(ticked.is_done() && skipped.is_done());
        assert_eq!(ticked.stats().cycles, skipped.stats().cycles);
        assert_eq!(ticked.stats().instructions, skipped.stats().instructions);
        assert_eq!(
            ticked.stats().stall_pair_cycles,
            skipped.stats().stall_pair_cycles
        );
        assert_eq!(
            ticked.stats().idle_pair_cycles,
            skipped.stats().idle_pair_cycles
        );
    }

    #[test]
    fn fail_rips_out_streams_and_quarantines_the_core() {
        let mut c = core();
        c.attach(Box::new(compute_only(100))).unwrap();
        c.attach(Box::new(compute_only(100))).unwrap();
        let mut out = Vec::new();
        c.tick(0, &mut out);
        assert!(c.is_alive() && c.has_vacancy());

        let streams = c.fail();
        assert_eq!(streams.len(), 2, "both live streams recovered");
        assert_eq!(streams[0].0, 0);
        assert_eq!(streams[1].0, 1);
        assert!(!c.is_alive());
        assert!(c.is_done(), "a dead core holds nothing up");
        assert!(!c.has_vacancy(), "quarantined from dispatch");
        assert_eq!(c.next_event(5), None, "no horizon from the dead");
        assert!(c.attach(Box::new(compute_only(1))).is_err());

        // Frozen: ticking and skipping charge nothing.
        let cycles = c.stats().cycles;
        out.clear();
        c.tick(1, &mut out);
        c.skip(2, 50);
        assert_eq!(c.stats().cycles, cycles);
        assert!(out.is_empty());
        assert!(c.fail().is_empty(), "second kill is a no-op");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stall end")]
    fn too_late_horizon_is_caught_by_skip() {
        // No iseg prefetch: its DMA would trip the (earlier) DMA assert.
        let mut c = TcgCore::new(
            0,
            TcgConfig {
                shared_iseg: false,
                ..TcgConfig::smarco()
            },
            space(),
        );
        let prog = ProgramBuilder::at(0x1000)
            .op(Op::Compute { latency: 10 })
            .op(Op::compute())
            .build();
        c.attach(Box::new(prog.into_stream())).unwrap();
        let mut out = Vec::new();
        c.tick(0, &mut out); // thread now stalled until cycle 10

        // A broken `next_event` claiming quiescence through cycle 50 would
        // drive exactly this call; debug builds refuse to jump past the
        // stall end.
        c.skip(1, 50);
    }
}
