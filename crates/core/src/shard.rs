//! The chip cut along its junction routers into PDES shards (§4.2).
//!
//! Each of the chip's sub-rings — 16 TCG cores, the sub-ring router, the
//! junction's MACT and the laxity-aware sub-dispatcher — is one
//! [`SubShard`]. Everything attached to the main ring — DDR controllers,
//! the memory side of the direct datapath and the main scheduler — is the
//! single [`HubShard`]. The shards share no state: every interaction
//! crosses a junction (± the direct datapath) and travels as a timestamped
//! [`ChipMsg`] with at least `junction_latency` cycles of delay, which is
//! exactly the lookahead the conservative PDES engine needs to advance all
//! shards in parallel.
//!
//! Determinism contract: a shard's evolution depends only on its own state
//! and the `(timestamp, sender, sequence)`-ordered inbox, and every
//! message carries an absolute delivery cycle fixed at emission. Parallel
//! and sequential window execution therefore produce bit-identical chips —
//! the property `tests/parallel_determinism.rs` locks in.

use std::collections::HashMap;

use smarco_mem::dram::Dram;
use smarco_mem::mact::{Batch, Mact, MactOutcome};
use smarco_mem::map::AddressSpace;
use smarco_mem::request::{MemRequest, RequestId, RequestIdAllocator};
use smarco_noc::backend::{build_hub_backend, build_sub_backend, Entry, NocBackend, NocEvent};
use smarco_noc::direct::DirectSpoke;
use smarco_noc::packet::{Criticality, NodeId, Packet};
use smarco_sched::{MainScheduler, Task};
use smarco_sim::event::EventWheel;
use smarco_sim::obs::{TraceConfig, TraceSink};
use smarco_sim::parallel::{Inbox, Outbox, Shard};
use smarco_sim::stats::MeanTracker;
use smarco_sim::Cycle;

use crate::config::SmarcoConfig;
use crate::dispatch::{ExitSignal, SubDispatcher, TaskExit};
use crate::fault::FaultPlan;
use crate::report::DegradationReport;
use crate::tcg::{CoreFull, CoreRequest, RequestKind, TcgCore};

/// A request travelling the uncore, with enough context to complete it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoreReq {
    /// The memory request.
    pub req: MemRequest,
    /// Issuing thread slot on the core (for completion).
    pub thread: usize,
    /// Path that produced it.
    pub kind: RequestKind,
}

/// Semantic payload of chip NoC packets.
#[derive(Debug, Clone, PartialEq)]
pub enum ChipPayload {
    /// Core → junction (MACT-eligible) or → memory controller (bypass).
    Req(UncoreReq),
    /// Junction → memory controller: a packed MACT line.
    Batch(Batch),
    /// Memory controller → junction: a served read batch.
    BatchReply(Batch),
    /// Memory-side reply to a single blocking request.
    Reply(UncoreReq),
    /// Core → core: access to a remote scratchpad.
    RemoteSpm(UncoreReq),
    /// Owner core → requester: remote-scratchpad completion.
    RemoteSpmReply(UncoreReq),
    /// Core → owner core: SPM-to-SPM DMA pull command (§3.5.1).
    DmaReq(UncoreReq),
    /// Owner core → requester: the pulled DMA data.
    DmaData(UncoreReq),
}

/// A DRAM service payload: either one request or a packed MACT batch.
#[derive(Debug, Clone)]
pub enum DramJob {
    /// A single (bypass or direct-path) request.
    Single {
        /// The request.
        ucr: UncoreReq,
        /// Whether the reply returns over the direct datapath.
        via_direct: bool,
    },
    /// A packed MACT line served as one burst.
    BatchJob(Batch),
}

/// Fixed NoC header bytes for request/descriptor packets.
pub(crate) const REQ_HEADER_BYTES: u32 = 4;
/// Descriptor bytes of a batch packet (type, tag, vector).
pub(crate) const BATCH_HEADER_BYTES: u32 = 8;

/// Everything that crosses a shard boundary.
#[derive(Debug, Clone)]
pub enum ChipMsg {
    /// Sub-ring → hub: a packet that crossed its junction upward, visible
    /// on the main ring one junction latency later.
    Up(Packet<ChipPayload>),
    /// Hub → sub-ring: a packet that crossed a junction downward — a
    /// core-bound reply or a junction-bound batch reply.
    Down(Packet<ChipPayload>),
    /// Sub-ring → hub: a direct-datapath read arriving at memory after
    /// the spoke's fixed traversal.
    DirectReq(UncoreReq),
    /// Hub → sub-ring: a direct-datapath reply arriving at its core.
    DirectReply(UncoreReq),
    /// Sub-ring → hub: a task exit for the main scheduler's accounting.
    Exit {
        /// The sub-ring the task ran on (for load release).
        subring: usize,
        /// The exit record.
        signal: ExitSignal,
    },
}

impl ChipMsg {
    /// Junction-crossing traffic: `Up`/`Down` packets and `Exit` signals
    /// all travel at the junction latency.
    pub const CLASS_JUNCTION: usize = 0;
    /// Direct-datapath traffic: requests and replies travel the spoke's
    /// fixed (longer) latency.
    pub const CLASS_DIRECT: usize = 1;

    /// The message's horizon-contract class (see
    /// `smarco_core::contract::horizon_contract`): the index into the
    /// contract's class floors that bounds how soon after a window start
    /// this kind of message may become visible.
    pub fn contract_class(&self) -> usize {
        match self {
            ChipMsg::Up(_) | ChipMsg::Down(_) | ChipMsg::Exit { .. } => Self::CLASS_JUNCTION,
            ChipMsg::DirectReq(_) | ChipMsg::DirectReply(_) => Self::CLASS_DIRECT,
        }
    }
}

/// Folds two optional horizons into their minimum (`None` = no event).
fn min_horizon(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) | (None, x) => x,
    }
}

/// Where a sub-ring packet enters the ring — remembered across NACKed
/// injection attempts so a retransmission re-enters at the same port.
#[derive(Debug, Clone, Copy)]
enum RingSource {
    /// A core's injection port (global core id).
    Core(usize),
    /// The junction's downlink port.
    Junction,
}

/// A NACKed packet waiting out its backoff: `(next attempt, entry port,
/// packet)`.
type Retransmit = (u32, RingSource, Packet<ChipPayload>);

/// Transfer size of a DMA pull. `MemRef` widths cap at 64 bytes, so the
/// size is carried by the fill range (one SPM block when the destination
/// is not local SPM).
fn dma_span_of(ucr: &UncoreReq) -> u64 {
    match ucr.kind {
        RequestKind::DmaPull {
            fill: Some((_, bytes)),
            ..
        } => bytes,
        _ => 64,
    }
}

/// One sub-ring's slice of the chip: its cores, sub-ring router, MACT,
/// direct-datapath sender spoke and sub-dispatcher.
pub struct SubShard {
    sr: usize,
    /// The hub's shard index (`= subrings`).
    hub: usize,
    /// Boundary-crossing latency the NoC backend promises — the delay
    /// stamped on junction-crossing messages.
    jl: Cycle,
    cores_per_subring: usize,
    channels: usize,
    mact_on: bool,
    /// Whether packets carry consumer-derived criticality for the
    /// backend's arbitration (and MACT bypass for elevated traffic).
    criticality_routing: bool,
    cores: Vec<TcgCore>,
    noc: Box<dyn NocBackend<ChipPayload>>,
    mact: Mact,
    dispatcher: SubDispatcher,
    /// Sender-side gate of this sub-ring's direct-datapath spoke.
    to_mem: Option<DirectSpoke<UncoreReq>>,
    ids: RequestIdAllocator,
    next_packet: u64,
    packet_stride: u64,
    /// End-to-end latency of blocking requests (issue → complete).
    mem_latency: MeanTracker,
    /// Latency samples staged for the facade's windowed metrics recorder.
    lat_samples: Vec<f64>,
    collect_latency: bool,
    requests: u64,
    /// Blocking requests in flight: id → issuing thread slot.
    outstanding: HashMap<RequestId, usize>,
    req_buf: Vec<CoreRequest>,
    exit_buf: Vec<ExitSignal>,
    /// The run's fault plan (zero plan when none was configured).
    plan: FaultPlan,
    /// Scheduled deaths of this shard's cores, sorted by `(cycle, core)`.
    kills: Vec<(Cycle, usize)>,
    /// Next unprocessed entry in `kills`.
    next_kill: usize,
    /// NACKed packets waiting out their exponential backoff.
    retransmit: EventWheel<Retransmit>,
    /// Fault damage and recovery spend observed by this shard.
    degradation: DegradationReport,
}

impl std::fmt::Debug for SubShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubShard")
            .field("sr", &self.sr)
            .field("outstanding", &self.outstanding.len())
            .finish()
    }
}

impl SubShard {
    /// Builds sub-ring shard `sr` of a chip with `config`; `n_shards`
    /// strides the request/packet id spaces so shards allocate without
    /// coordinating.
    pub fn new(sr: usize, config: &SmarcoConfig, space: AddressSpace) -> Self {
        let cps = config.noc.cores_per_subring;
        let n_shards = (config.noc.subrings + 1) as u64;
        let cores = (sr * cps..(sr + 1) * cps)
            .map(|i| TcgCore::new(i, config.tcg, space))
            .collect();
        let plan = config.fault.clone().unwrap_or_else(FaultPlan::none);
        let kills = plan.core_kills_in(sr * cps, (sr + 1) * cps);
        let mut mact = Mact::new(config.mact.unwrap_or_default());
        mact.set_lockups(plan.mact_lockups(sr));
        Self {
            sr,
            hub: config.noc.subrings,
            jl: config.noc.boundary_latency(),
            cores_per_subring: cps,
            channels: config.dram.channels,
            mact_on: config.mact.is_some(),
            criticality_routing: config.noc.criticality_routing,
            cores,
            noc: build_sub_backend(&config.noc, sr),
            mact,
            dispatcher: SubDispatcher::new(cps * config.tcg.resident_threads),
            to_mem: config
                .direct
                .map(|d| DirectSpoke::new(d.latency, d.bytes_per_cycle)),
            ids: RequestIdAllocator::strided(sr as u64, n_shards),
            next_packet: sr as u64,
            packet_stride: n_shards,
            mem_latency: MeanTracker::new(),
            lat_samples: Vec::new(),
            collect_latency: false,
            requests: 0,
            outstanding: HashMap::new(),
            req_buf: Vec::new(),
            exit_buf: Vec::new(),
            plan,
            kills,
            next_kill: 0,
            retransmit: EventWheel::new(),
            degradation: DegradationReport::default(),
        }
    }

    /// Fault damage and recovery spend this shard has observed.
    pub fn degradation(&self) -> DegradationReport {
        self.degradation
    }

    /// This shard's sub-ring index.
    pub fn subring(&self) -> usize {
        self.sr
    }

    /// The shard's cores (locally indexed; global id = `sr * cps + i`).
    pub fn cores(&self) -> &[TcgCore] {
        &self.cores
    }

    /// Mutable view of the shard's cores.
    pub fn cores_mut(&mut self) -> &mut [TcgCore] {
        &mut self.cores
    }

    /// The junction's MACT.
    pub fn mact(&self) -> &Mact {
        &self.mact
    }

    /// Requests this shard's cores issued into the uncore.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// End-to-end blocking-request latency tracker.
    pub fn mem_latency(&self) -> &MeanTracker {
        &self.mem_latency
    }

    /// Blocking requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// The sub-dispatcher (queue depth, in-flight count).
    pub fn dispatcher(&self) -> &SubDispatcher {
        &self.dispatcher
    }

    /// Queues an assigned task with its stream.
    pub fn enqueue_task(
        &mut self,
        task: Task,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
        now: Cycle,
    ) {
        self.dispatcher.enqueue(task, stream, now);
    }

    /// Attaches a stream to local core `local`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreFull`] when the core has no vacant slot.
    pub fn attach(
        &mut self,
        local: usize,
        stream: Box<dyn smarco_isa::InstructionStream + Send>,
    ) -> Result<usize, CoreFull> {
        self.cores[local].attach(stream)
    }

    /// Starts staging latency samples for the facade's metrics recorder.
    pub fn collect_latency(&mut self) {
        self.collect_latency = true;
    }

    /// Drains staged latency samples (in completion order).
    pub fn take_lat_samples(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.lat_samples)
    }

    /// Cumulative `(payload, offered)` bytes of the sub-ring's channels.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        self.noc.payload_offered_bytes()
    }

    /// Payload utilization of the sub-ring's channels.
    pub fn payload_utilization(&self) -> f64 {
        self.noc.payload_utilization()
    }

    /// Turns event tracing on across the shard's components.
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        for core in &mut self.cores {
            core.enable_trace(cfg);
        }
        self.noc.enable_trace();
        self.mact.enable_trace(self.sr);
        self.dispatcher.enable_trace();
    }

    /// Moves staged events into `sink` (cores, ring, MACT, dispatcher).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        for core in &mut self.cores {
            if let Some(buf) = core.trace_mut() {
                buf.drain_into(sink);
            }
        }
        self.noc.drain_trace(sink);
        if let Some(buf) = self.mact.trace_mut() {
            buf.drain_into(sink);
        }
        self.dispatcher.drain_trace(sink);
    }

    /// Whether the shard holds no runnable or in-flight work. In-flight
    /// boundary messages are the engine's to account for.
    pub fn is_idle(&self) -> bool {
        self.dispatcher.is_idle()
            && self.outstanding.is_empty()
            && self.noc.is_idle()
            && self.mact.open_lines() == 0
            && self.to_mem.as_ref().is_none_or(DirectSpoke::is_idle)
            && self.retransmit.is_empty()
            && self.cores.iter().all(TcgCore::is_done)
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / 4096) % self.channels as u64) as usize
    }

    fn packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        now: Cycle,
        payload: ChipPayload,
    ) -> Packet<ChipPayload> {
        let id = self.next_packet;
        self.next_packet += self.packet_stride;
        Packet::new(id, src, dst, bytes.max(1), now, payload)
    }

    fn local_pos(&self, core: usize) -> usize {
        debug_assert_eq!(core / self.cores_per_subring, self.sr);
        core % self.cores_per_subring
    }

    /// Consumer-derived criticality of a fresh core request (only
    /// consulted when criticality routing is on): real-time reads gate a
    /// hardware deadline, DMA pulls are latency-tolerant bulk, and a
    /// deadline-tight task's demand traffic is elevated.
    fn classify_criticality(
        &self,
        local: usize,
        kind: RequestKind,
        realtime: bool,
        now: Cycle,
    ) -> Criticality {
        if realtime {
            Criticality::Critical
        } else if matches!(kind, RequestKind::DmaPull { .. }) {
            Criticality::Bulk
        } else if self.dispatcher.is_deadline_tight(local, now) {
            Criticality::Elevated
        } else {
            Criticality::Normal
        }
    }

    /// Injects a core-sourced packet; local exits may deliver instantly.
    fn send_from_core(
        &mut self,
        core: usize,
        pkt: Packet<ChipPayload>,
        now: Cycle,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        if pkt.src == pkt.dst {
            // Self-delivery never touches a link, so it cannot corrupt.
            self.handle_delivery(pkt, now, outbox);
            return;
        }
        self.inject_sub(RingSource::Core(core), pkt, 0, now, outbox);
    }

    /// Attempt `attempt` at putting `pkt` on the sub-ring. A corrupted
    /// attempt is NACKed back to the entry port, which re-injects after
    /// the retry policy's exponential backoff; the attempt after the last
    /// allowed retry always succeeds (the transient has cleared), so a
    /// noisy link *delays* packets but never loses them. The verdict is a
    /// pure function of `(plan seed, packet id, attempt)` — identical for
    /// any PDES worker count.
    fn inject_sub(
        &mut self,
        source: RingSource,
        pkt: Packet<ChipPayload>,
        attempt: u32,
        now: Cycle,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        let retry = self.plan.retry();
        if attempt < retry.max_retries && self.plan.corrupts_sub(pkt.id, attempt) {
            self.degradation.link_retries += 1;
            self.retransmit
                .schedule(now + retry.backoff(attempt), (attempt + 1, source, pkt));
            return;
        }
        let entry = match source {
            RingSource::Core(core) => Entry::Endpoint(self.local_pos(core)),
            RingSource::Junction => Entry::Bridge,
        };
        if let Some(ev) = self.noc.inject(entry, pkt, now) {
            match ev {
                NocEvent::Delivered(p) => self.handle_delivery(p, now, outbox),
                NocEvent::Boundary(p) => {
                    outbox.send(self.hub, now + self.jl, ChipMsg::Up(p));
                }
            }
        }
    }

    /// Routes a fresh core request into the uncore.
    fn route_request(
        &mut self,
        core: usize,
        r: CoreRequest,
        now: Cycle,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        self.requests += 1;
        let req = MemRequest {
            id: self.ids.next_id(),
            core,
            mem: r.mem,
            is_write: r.is_write,
            issued_at: now,
        };
        let ucr = UncoreReq {
            req,
            thread: r.thread,
            kind: r.kind,
        };
        if r.blocking {
            self.outstanding.insert(req.id, r.thread);
        }
        if let RequestKind::DmaPull { owner, .. } = r.kind {
            // DMA command descriptor to the owning core; the data rides
            // back as one (possibly multi-cycle) packet.
            let mut pkt = self.packet(
                NodeId::Core(core),
                NodeId::Core(owner),
                REQ_HEADER_BYTES,
                now,
                ChipPayload::DmaReq(ucr),
            );
            if self.criticality_routing {
                pkt.criticality = Criticality::Bulk;
            }
            self.send_from_core(core, pkt, now, outbox);
            return;
        }
        if let RequestKind::RemoteSpm { owner } = r.kind {
            let bytes = if r.is_write {
                u32::from(r.mem.bytes) + REQ_HEADER_BYTES
            } else {
                REQ_HEADER_BYTES
            };
            let pkt = self.packet(
                NodeId::Core(core),
                NodeId::Core(owner),
                bytes,
                now,
                ChipPayload::RemoteSpm(ucr),
            );
            self.send_from_core(core, pkt, now, outbox);
            return;
        }
        // Real-time reads may use the direct datapath.
        let realtime = r.mem.priority == smarco_isa::Priority::Realtime;
        if realtime && !r.is_write {
            if let Some(spoke) = self.to_mem.as_mut() {
                spoke.send(REQ_HEADER_BYTES, ucr);
                return;
            }
        }
        let bytes = if r.is_write {
            (r.span_bytes.min(u64::from(u32::MAX)) as u32) + REQ_HEADER_BYTES
        } else {
            REQ_HEADER_BYTES
        };
        let crit = if self.criticality_routing {
            self.classify_criticality(self.local_pos(core), r.kind, realtime, now)
        } else {
            Criticality::Normal
        };
        // Elevated (deadline-tight) traffic skips MACT collection: the
        // batching deadline it would wait out is exactly the latency it
        // cannot afford.
        let mact_on = self.mact_on && !realtime && crit < Criticality::Elevated;
        let dst = if mact_on {
            NodeId::Junction(self.sr)
        } else {
            NodeId::MemCtrl(self.channel_of(r.mem.addr))
        };
        let mut pkt = self.packet(NodeId::Core(core), dst, bytes, now, ChipPayload::Req(ucr));
        pkt.realtime = realtime;
        pkt.criticality = crit;
        self.send_from_core(core, pkt, now, outbox);
    }

    /// Handles a packet delivered at one of this shard's endpoints (a core
    /// or the junction's own structures).
    fn handle_delivery(
        &mut self,
        pkt: Packet<ChipPayload>,
        now: Cycle,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        match pkt.payload {
            ChipPayload::Req(ucr) => {
                let NodeId::Junction(sr) = pkt.dst else {
                    panic!(
                        "request packet delivered to {:?} in sub-ring shard",
                        pkt.dst
                    )
                };
                debug_assert_eq!(sr, self.sr);
                match self.mact.offer(ucr.req, now) {
                    MactOutcome::Collected => {}
                    MactOutcome::Bypass(req) => {
                        let bytes = if req.is_write {
                            u32::from(req.mem.bytes) + REQ_HEADER_BYTES
                        } else {
                            REQ_HEADER_BYTES
                        };
                        let dst = NodeId::MemCtrl(self.channel_of(req.mem.addr));
                        let ucr2 = UncoreReq { req, ..ucr };
                        let mut p = self.packet(
                            NodeId::Junction(sr),
                            dst,
                            bytes,
                            now,
                            ChipPayload::Req(ucr2),
                        );
                        p.criticality = pkt.criticality;
                        outbox.send(self.hub, now + self.jl, ChipMsg::Up(p));
                    }
                }
            }
            ChipPayload::BatchReply(batch) => {
                let NodeId::Junction(sr) = pkt.dst else {
                    panic!("batch reply delivered off-junction to {:?}", pkt.dst)
                };
                for req in batch.requests {
                    if req.is_write {
                        continue;
                    }
                    let ucr = UncoreReq {
                        req,
                        thread: usize::MAX,
                        kind: RequestKind::CacheFill,
                    };
                    let p = self.packet(
                        NodeId::Junction(sr),
                        NodeId::Core(req.core),
                        u32::from(req.mem.bytes),
                        now,
                        ChipPayload::Reply(ucr),
                    );
                    self.inject_sub(RingSource::Junction, p, 0, now, outbox);
                }
            }
            ChipPayload::Reply(ucr) => {
                let NodeId::Core(c) = pkt.dst else {
                    panic!("reply delivered off-core to {:?}", pkt.dst)
                };
                self.complete_request(c, ucr, now);
            }
            ChipPayload::RemoteSpm(ucr) => {
                let NodeId::Core(owner) = pkt.dst else {
                    panic!("remote SPM packet delivered off-core to {:?}", pkt.dst)
                };
                // Serve at the owner (the owner's SPM is software-managed;
                // remote accesses are to data the runtime placed there).
                let bytes = if ucr.req.is_write {
                    1
                } else {
                    u32::from(ucr.req.mem.bytes)
                };
                let p = self.packet(
                    NodeId::Core(owner),
                    NodeId::Core(ucr.req.core),
                    bytes,
                    now,
                    ChipPayload::RemoteSpmReply(ucr),
                );
                self.send_from_core(owner, p, now, outbox);
            }
            ChipPayload::RemoteSpmReply(ucr) => {
                let NodeId::Core(c) = pkt.dst else {
                    panic!("remote SPM reply delivered off-core to {:?}", pkt.dst)
                };
                self.complete_request(c, ucr, now);
            }
            ChipPayload::DmaReq(ucr) => {
                let NodeId::Core(owner) = pkt.dst else {
                    panic!("DMA command delivered off-core to {:?}", pkt.dst)
                };
                // The owner streams the requested range back as one
                // wormhole packet sized by the transfer.
                let span = u32::try_from(dma_span_of(&ucr)).unwrap_or(u32::MAX).max(1);
                let mut p = self.packet(
                    NodeId::Core(owner),
                    NodeId::Core(ucr.req.core),
                    span,
                    now,
                    ChipPayload::DmaData(ucr),
                );
                if self.criticality_routing {
                    p.criticality = Criticality::Bulk;
                }
                self.send_from_core(owner, p, now, outbox);
            }
            ChipPayload::DmaData(ucr) => {
                let NodeId::Core(c) = pkt.dst else {
                    panic!("DMA data delivered off-core to {:?}", pkt.dst)
                };
                debug_assert_eq!(c, ucr.req.core);
                if let RequestKind::DmaPull { fill, .. } = ucr.kind {
                    let local = self.local_pos(c);
                    if self.cores[local].is_alive() {
                        self.cores[local].dma_complete(ucr.thread, fill);
                    } else {
                        self.degradation.dropped_replies += 1;
                    }
                }
            }
            ChipPayload::Batch(_) => panic!("MACT batch delivered inside a sub-ring shard"),
        }
    }

    fn complete_request(&mut self, core: usize, ucr: UncoreReq, now: Cycle) {
        debug_assert_eq!(core, ucr.req.core);
        if let Some(thread) = self.outstanding.remove(&ucr.req.id) {
            let local = self.local_pos(core);
            if !self.cores[local].is_alive() {
                // The issuing thread died with its core; the reply has no
                // one to wake. Still retired from `outstanding` above so
                // the shard can drain.
                self.degradation.dropped_replies += 1;
                return;
            }
            let lat = now.saturating_sub(ucr.req.issued_at) as f64;
            self.mem_latency.record(lat);
            if self.collect_latency {
                self.lat_samples.push(lat);
            }
            self.cores[local].complete(thread, now);
        }
    }

    /// One simulated cycle, mirroring the monolithic chip's step order
    /// within the shard: boundary arrivals, ring, dispatcher, cores, MACT,
    /// direct-path departures.
    fn step(&mut self, now: Cycle, inbox: &mut Inbox<ChipMsg>, outbox: &mut Outbox<ChipMsg>) {
        // 0. Scheduled core deaths fire: rip out the streams, re-enqueue
        //    dispatcher-managed tasks with recomputed deadlines, and
        //    quarantine the core (it reports no vacancy from here on).
        while self.next_kill < self.kills.len() && self.kills[self.next_kill].0 <= now {
            let (_, core) = self.kills[self.next_kill];
            self.next_kill += 1;
            let local = self.local_pos(core);
            if !self.cores[local].is_alive() {
                continue;
            }
            let streams = self.cores[local].fail();
            self.degradation.quarantined_cores += 1;
            let (redispatched, lost) = self.dispatcher.fail_core(local, now, streams);
            self.degradation.redispatches += redispatched;
            self.degradation.lost_threads += lost;
        }
        // 1. Boundary messages due this cycle.
        while let Some(msg) = inbox.pop_due(now) {
            match msg {
                ChipMsg::Down(pkt) => match pkt.dst {
                    NodeId::Core(_) => {
                        self.inject_sub(RingSource::Junction, pkt, 0, now, outbox);
                    }
                    NodeId::Junction(_) => self.handle_delivery(pkt, now, outbox),
                    other => panic!("downlink packet addressed to {other:?}"),
                },
                ChipMsg::DirectReply(ucr) => self.complete_request(ucr.req.core, ucr, now),
                other => panic!("sub-ring shard received {other:?}"),
            }
        }
        // 1b. NACKed packets whose backoff expired re-enter the ring.
        while let Some((attempt, source, pkt)) = self.retransmit.pop_due(now) {
            self.inject_sub(source, pkt, attempt, now, outbox);
        }
        // 2. Backend deliveries and junction boundary crossings.
        for ev in self.noc.tick(now) {
            match ev {
                NocEvent::Delivered(p) => self.handle_delivery(p, now, outbox),
                NocEvent::Boundary(p) => {
                    outbox.send(self.hub, now + self.jl, ChipMsg::Up(p));
                }
            }
        }
        // 3. The sub-dispatcher binds ready tasks to freed slots; exits
        //    head for the main scheduler.
        let mut exits = std::mem::take(&mut self.exit_buf);
        self.dispatcher.tick(&mut self.cores, now, &mut exits);
        for signal in exits.drain(..) {
            outbox.send(
                self.hub,
                now + self.jl,
                ChipMsg::Exit {
                    subring: self.sr,
                    signal,
                },
            );
        }
        self.exit_buf = exits;
        // 4. Cores issue; requests enter the uncore.
        let mut buf = std::mem::take(&mut self.req_buf);
        for i in 0..self.cores.len() {
            buf.clear();
            let core = self.sr * self.cores_per_subring + i;
            self.cores[i].tick(now, &mut buf);
            for r in buf.drain(..) {
                self.route_request(core, r, now, outbox);
            }
        }
        self.req_buf = buf;
        // 5. MACT deadlines; flushed batches head for memory.
        for batch in self.mact.tick(now) {
            let bytes = if batch.is_write {
                batch.bytes_referenced + BATCH_HEADER_BYTES
            } else {
                BATCH_HEADER_BYTES
            };
            let dst = NodeId::MemCtrl(self.channel_of(batch.base));
            let mut p = self.packet(
                NodeId::Junction(self.sr),
                dst,
                bytes,
                now,
                ChipPayload::Batch(batch),
            );
            if self.criticality_routing {
                // The batch already spent its collection window; its
                // reads now race the MACT deadline.
                p.criticality = Criticality::Elevated;
            }
            outbox.send(self.hub, now + self.jl, ChipMsg::Up(p));
        }
        // 6. Direct-path departures arrive at memory after the spoke's
        //    fixed traversal — already an absolute-cycle message.
        if let Some(spoke) = self.to_mem.as_mut() {
            for (arrives, ucr) in spoke.tick(now) {
                outbox.send(self.hub, arrives, ChipMsg::DirectReq(ucr));
            }
        }
    }

    /// Event horizon over every simulated structure in the shard: cores
    /// (stall ends, DMA, retirees), the sub-ring router (in-flight flits),
    /// the MACT (open-line deadlines, slid past lockup windows), the
    /// dispatcher (pending tasks able to bind), the direct-path sender
    /// spoke, plus the fault machinery — the next scheduled core death and
    /// the earliest retransmission due. Blocking requests in `outstanding`
    /// need no term — their replies arrive as boundary messages, which the
    /// engine accounts for via the inbox.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = None;
        for core in &self.cores {
            h = min_horizon(h, core.next_event(now));
        }
        h = min_horizon(h, self.noc.next_event(now));
        h = min_horizon(h, self.mact.next_event(now));
        let vacancy = self.cores.iter().any(TcgCore::has_vacancy);
        h = min_horizon(h, self.dispatcher.next_event(now, vacancy));
        if let Some(spoke) = self.to_mem.as_ref() {
            h = min_horizon(h, spoke.next_event(now));
        }
        if let Some(&(at, _)) = self.kills.get(self.next_kill) {
            h = min_horizon(h, Some(now.max(at)));
        }
        h = min_horizon(h, self.retransmit.next_due().map(|d| now.max(d)));
        h
    }

    /// Fast-forwards the quiescent shard across `[from, to)`: cores charge
    /// their idle/stall pair-cycles, the router charges its idle-grant
    /// bandwidth, the spoke saturates its credit. The MACT and dispatcher
    /// mutate nothing on idle ticks, so they only contribute debug
    /// assertions that the horizon really cleared them.
    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        for core in &mut self.cores {
            core.skip(from, to);
        }
        self.noc.skip_idle(from, to);
        debug_assert_eq!(
            self.mact.ready_batches(),
            0,
            "cycle-skipped a MACT with flushed batches waiting"
        );
        debug_assert!(
            self.mact.next_event(from).is_none_or(|d| d >= to),
            "cycle-skipped past a MACT line deadline"
        );
        debug_assert!(
            self.dispatcher
                .next_event(from, self.cores.iter().any(TcgCore::has_vacancy))
                .is_none_or(|d| d >= to),
            "cycle-skipped past a ready dispatch"
        );
        debug_assert!(
            self.kills
                .get(self.next_kill)
                .is_none_or(|&(at, _)| at >= to),
            "cycle-skipped past a scheduled core death"
        );
        debug_assert!(
            self.retransmit.next_due().is_none_or(|d| d >= to),
            "cycle-skipped past a due retransmission"
        );
        if let Some(spoke) = self.to_mem.as_mut() {
            spoke.skip_idle(from, to);
        }
    }
}

/// The main-ring slice of the chip: DDR controllers, the memory side of
/// the direct datapath, and the main scheduler.
pub struct HubShard {
    jl: Cycle,
    cores_per_subring: usize,
    channels: usize,
    main: Box<dyn NocBackend<ChipPayload>>,
    dram: Dram<DramJob>,
    /// Memory-side direct-datapath spokes, one per sub-ring.
    from_mem: Vec<DirectSpoke<UncoreReq>>,
    sched: MainScheduler,
    exits: Vec<TaskExit>,
    dram_requests: u64,
    next_packet: u64,
    packet_stride: u64,
    /// The run's fault plan (zero plan when none was configured).
    plan: FaultPlan,
    /// DDR channel deaths as `(channel, cycle)`, earliest per channel.
    channel_deaths: Vec<(usize, Cycle)>,
    /// NACKed main-ring packets waiting out their backoff, with the
    /// attempt number of the next injection.
    retransmit: EventWheel<(u32, Packet<ChipPayload>)>,
    /// Fault damage and recovery spend observed by the hub.
    degradation: DegradationReport,
}

impl std::fmt::Debug for HubShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubShard")
            .field("exits", &self.exits.len())
            .field("dram_requests", &self.dram_requests)
            .finish()
    }
}

impl HubShard {
    /// Builds the hub shard of a chip with `config`.
    pub fn new(config: &SmarcoConfig) -> Self {
        let n_shards = (config.noc.subrings + 1) as u64;
        let plan = config.fault.clone().unwrap_or_else(FaultPlan::none);
        let mut dram = Dram::new(config.dram);
        for (channel, from, to) in plan.dram_stalls() {
            dram.stall_channel(channel, from, to);
        }
        Self {
            jl: config.noc.boundary_latency(),
            cores_per_subring: config.noc.cores_per_subring,
            channels: config.dram.channels,
            main: build_hub_backend(&config.noc),
            dram,
            from_mem: config
                .direct
                .map(|d| {
                    (0..d.subrings)
                        .map(|_| DirectSpoke::new(d.latency, d.bytes_per_cycle))
                        .collect()
                })
                .unwrap_or_default(),
            sched: MainScheduler::new(config.noc.subrings),
            exits: Vec::new(),
            dram_requests: 0,
            next_packet: config.noc.subrings as u64,
            packet_stride: n_shards,
            channel_deaths: plan.channel_deaths(),
            plan,
            retransmit: EventWheel::new(),
            degradation: DegradationReport::default(),
        }
    }

    /// Fault damage and recovery spend the hub has observed by `now`,
    /// including channels quarantined by then and requests DDR stall
    /// windows delayed.
    pub fn degradation(&self, now: Cycle) -> DegradationReport {
        let mut d = self.degradation;
        d.quarantined_channels = self
            .channel_deaths
            .iter()
            .filter(|&&(_, at)| at <= now)
            .count() as u64;
        d.dram_stalled_requests = self.dram.stalled_requests();
        d
    }

    /// Assigns a submitted task to the least-loaded sub-ring.
    pub fn assign(&mut self, task: &Task) -> usize {
        self.sched.assign(task)
    }

    /// Exit records of hardware-dispatched tasks, in boundary-message
    /// delivery order.
    pub fn exits(&self) -> &[TaskExit] {
        &self.exits
    }

    /// Bursts DRAM has served.
    pub fn dram_requests(&self) -> u64 {
        self.dram_requests
    }

    /// The DRAM model (bytes served, busy cycles, utilization).
    pub fn dram(&self) -> &Dram<DramJob> {
        &self.dram
    }

    /// Cumulative `(payload, offered)` bytes of the main ring's channels.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        self.main.payload_offered_bytes()
    }

    /// Payload utilization of the main ring's channels.
    pub fn payload_utilization(&self) -> f64 {
        self.main.payload_utilization()
    }

    /// Turns event tracing on across the hub's components.
    pub fn enable_trace(&mut self) {
        self.main.enable_trace();
        self.dram.enable_trace();
    }

    /// Moves staged events into `sink` (main ring, DRAM).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.main.drain_trace(sink);
        self.dram.drain_trace(sink);
    }

    /// Whether the hub holds no in-flight work.
    pub fn is_idle(&self) -> bool {
        self.main.is_idle()
            && self.dram.is_idle()
            && self.retransmit.is_empty()
            && self.from_mem.iter().all(DirectSpoke::is_idle)
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / 4096) % self.channels as u64) as usize
    }

    fn packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        now: Cycle,
        payload: ChipPayload,
    ) -> Packet<ChipPayload> {
        let id = self.next_packet;
        self.next_packet += self.packet_stride;
        Packet::new(id, src, dst, bytes.max(1), now, payload)
    }

    /// The channel `channel` maps to after quarantine: itself while alive,
    /// else the next live channel round-robin. When every channel is dead
    /// the original keeps serving — a fully dead memory system has no
    /// graceful degradation left to model.
    fn live_channel(&mut self, channel: usize, now: Cycle) -> usize {
        let dead = |c: usize, deaths: &[(usize, Cycle)]| {
            deaths.iter().any(|&(dc, at)| dc == c && at <= now)
        };
        if self.channel_deaths.is_empty() || !dead(channel, &self.channel_deaths) {
            return channel;
        }
        for off in 1..self.channels {
            let c = (channel + off) % self.channels;
            if !dead(c, &self.channel_deaths) {
                self.degradation.redirected_requests += 1;
                return c;
            }
        }
        channel
    }

    fn enqueue_dram(&mut self, addr: u64, span: u64, job: DramJob, now: Cycle) {
        self.dram_requests += 1;
        let channel = self.channel_of(addr);
        let channel = self.live_channel(channel, now);
        self.dram.enqueue(channel, span.max(1), now, job);
    }

    fn on_main_event(
        &mut self,
        ev: NocEvent<ChipPayload>,
        now: Cycle,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        match ev {
            NocEvent::Delivered(pkt) => match pkt.dst {
                NodeId::MemCtrl(_) => match pkt.payload {
                    ChipPayload::Req(ucr) => self.enqueue_dram(
                        ucr.req.mem.addr,
                        u64::from(ucr.req.mem.bytes),
                        DramJob::Single {
                            ucr,
                            via_direct: false,
                        },
                        now,
                    ),
                    ChipPayload::Batch(batch) => {
                        self.enqueue_dram(
                            batch.base,
                            batch.span_bytes,
                            DramJob::BatchJob(batch),
                            now,
                        );
                    }
                    other => panic!("memory controller received {other:?}"),
                },
                NodeId::Junction(sr) => outbox.send(sr, now + self.jl, ChipMsg::Down(pkt)),
                other => panic!("unexpected main-ring delivery at {other:?}"),
            },
            NocEvent::Boundary(pkt) => {
                let NodeId::Core(c) = pkt.dst else {
                    unreachable!("only core packets descend");
                };
                let sr = c / self.cores_per_subring;
                outbox.send(sr, now + self.jl, ChipMsg::Down(pkt));
            }
        }
    }

    fn inject_main(&mut self, pkt: Packet<ChipPayload>, now: Cycle, outbox: &mut Outbox<ChipMsg>) {
        self.inject_main_attempt(pkt, 0, now, outbox);
    }

    /// Attempt `attempt` at putting `pkt` on the main ring, with the same
    /// NACK/backoff/final-attempt-clean semantics as the sub-ring path.
    fn inject_main_attempt(
        &mut self,
        pkt: Packet<ChipPayload>,
        attempt: u32,
        now: Cycle,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        let retry = self.plan.retry();
        if attempt < retry.max_retries && self.plan.corrupts_main(pkt.id, attempt) {
            self.degradation.link_retries += 1;
            self.retransmit
                .schedule(now + retry.backoff(attempt), (attempt + 1, pkt));
            return;
        }
        if let Some(ev) = self.main.inject(Entry::Bridge, pkt, now) {
            self.on_main_event(ev, now, outbox);
        }
    }

    /// One simulated cycle: boundary arrivals, direct-path reply
    /// departures, main ring, DRAM.
    fn step(&mut self, now: Cycle, inbox: &mut Inbox<ChipMsg>, outbox: &mut Outbox<ChipMsg>) {
        // 1. Boundary messages due this cycle.
        while let Some(msg) = inbox.pop_due(now) {
            match msg {
                ChipMsg::Up(pkt) => self.inject_main(pkt, now, outbox),
                ChipMsg::DirectReq(ucr) => self.enqueue_dram(
                    ucr.req.mem.addr,
                    u64::from(ucr.req.mem.bytes),
                    DramJob::Single {
                        ucr,
                        via_direct: true,
                    },
                    now,
                ),
                ChipMsg::Exit { subring, signal } => {
                    self.sched.complete(subring, signal.work);
                    self.exits.push(TaskExit {
                        task: signal.task,
                        exit: signal.exit,
                        deadline: signal.deadline,
                    });
                }
                other => panic!("hub shard received {other:?}"),
            }
        }
        // 1b. NACKed packets whose backoff expired re-enter the ring.
        while let Some((attempt, pkt)) = self.retransmit.pop_due(now) {
            self.inject_main_attempt(pkt, attempt, now, outbox);
        }
        // 2. Direct-path replies depart toward their cores (before DRAM
        //    produces new ones, matching the monolithic step order).
        for sr in 0..self.from_mem.len() {
            for (arrives, ucr) in self.from_mem[sr].tick(now) {
                outbox.send(sr, arrives, ChipMsg::DirectReply(ucr));
            }
        }
        // 3. Main-ring deliveries and descents.
        for ev in self.main.tick(now) {
            self.on_main_event(ev, now, outbox);
        }
        // 4. DRAM completions produce replies.
        for job in self.dram.tick(now) {
            match job {
                DramJob::Single { ucr, via_direct } => {
                    if ucr.req.is_write {
                        continue; // writes complete silently
                    }
                    if via_direct {
                        let sr = ucr.req.core / self.cores_per_subring;
                        self.from_mem[sr].send(u32::from(ucr.req.mem.bytes), ucr);
                    } else {
                        let p = self.packet(
                            NodeId::MemCtrl(self.channel_of(ucr.req.mem.addr)),
                            NodeId::Core(ucr.req.core),
                            u32::from(ucr.req.mem.bytes),
                            now,
                            ChipPayload::Reply(ucr),
                        );
                        self.inject_main(p, now, outbox);
                    }
                }
                DramJob::BatchJob(batch) => {
                    if batch.is_write {
                        continue;
                    }
                    let sr = batch.requests.first().map(|r| r.core).unwrap_or(0)
                        / self.cores_per_subring;
                    let p = self.packet(
                        NodeId::MemCtrl(self.channel_of(batch.base)),
                        NodeId::Junction(sr),
                        batch.bytes_referenced.max(1),
                        now,
                        ChipPayload::BatchReply(batch),
                    );
                    self.inject_main(p, now, outbox);
                }
            }
        }
    }

    /// Event horizon over the hub's structures: the main ring's in-flight
    /// flits, the earliest DRAM completion and the memory-side reply
    /// spokes. The main scheduler is purely message-driven (assignment and
    /// load release both ride boundary messages), so it has no term.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = self.main.next_event(now);
        h = min_horizon(h, self.dram.next_event().map(|d| now.max(d)));
        h = min_horizon(h, self.retransmit.next_due().map(|d| now.max(d)));
        for spoke in &self.from_mem {
            h = min_horizon(h, spoke.next_event(now));
        }
        h
    }

    /// Fast-forwards the quiescent hub across `[from, to)`: the main ring
    /// charges its idle-grant bandwidth and the spokes saturate their
    /// credit. An idle DRAM tick mutates nothing, so it only contributes a
    /// debug assertion.
    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        self.main.skip_idle(from, to);
        debug_assert!(
            self.dram.next_event().is_none_or(|d| d >= to),
            "cycle-skipped past a DRAM completion"
        );
        debug_assert!(
            self.retransmit.next_due().is_none_or(|d| d >= to),
            "cycle-skipped past a due retransmission"
        );
        for spoke in &mut self.from_mem {
            spoke.skip_idle(from, to);
        }
    }
}

/// One shard of the sharded chip: a sub-ring or the hub. Boxed so the
/// engine's shard vector stays compact despite the variants' bulk.
#[derive(Debug)]
pub enum ChipShard {
    /// A sub-ring shard.
    Sub(Box<SubShard>),
    /// The hub shard.
    Hub(Box<HubShard>),
}

impl ChipShard {
    /// The sub-ring shard inside, if any.
    pub fn as_sub(&self) -> Option<&SubShard> {
        match self {
            ChipShard::Sub(s) => Some(s),
            ChipShard::Hub(_) => None,
        }
    }

    /// Mutable sub-ring shard inside, if any.
    pub fn as_sub_mut(&mut self) -> Option<&mut SubShard> {
        match self {
            ChipShard::Sub(s) => Some(s),
            ChipShard::Hub(_) => None,
        }
    }

    /// The hub shard inside, if any.
    pub fn as_hub(&self) -> Option<&HubShard> {
        match self {
            ChipShard::Sub(_) => None,
            ChipShard::Hub(h) => Some(h),
        }
    }

    /// Mutable hub shard inside, if any.
    pub fn as_hub_mut(&mut self) -> Option<&mut HubShard> {
        match self {
            ChipShard::Sub(_) => None,
            ChipShard::Hub(h) => Some(h),
        }
    }

    /// Human-readable shard name (`sub-ring{i}` / `hub`), used to label
    /// shard-ordered rows in the host-profile report.
    pub fn label(&self) -> String {
        match self {
            ChipShard::Sub(s) => format!("sub-ring{}", s.subring()),
            ChipShard::Hub(_) => "hub".to_string(),
        }
    }

    /// Whether the shard holds no in-flight work.
    pub fn is_idle(&self) -> bool {
        match self {
            ChipShard::Sub(s) => s.is_idle(),
            ChipShard::Hub(h) => h.is_idle(),
        }
    }
}

impl Shard for ChipShard {
    type Msg = ChipMsg;

    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<ChipMsg>,
        outbox: &mut Outbox<ChipMsg>,
    ) {
        for now in from..to {
            match self {
                ChipShard::Sub(s) => s.step(now, inbox, outbox),
                ChipShard::Hub(h) => h.step(now, inbox, outbox),
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            ChipShard::Sub(s) => s.next_event(now),
            ChipShard::Hub(h) => h.next_event(now),
        }
    }

    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        match self {
            ChipShard::Sub(s) => s.skip_window(from, to),
            ChipShard::Hub(h) => h.skip_window(from, to),
        }
    }
}
