//! The SmarCo processor: TCG cores and the whole-chip model.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates:
//!
//! * [`config`] — TCG and chip configurations (the paper's Table 2 column).
//! * [`thread`] — thread slots and the **in-pair threads** pair scheduler
//!   (§3.1.1): threads are coupled two-by-two; exactly one of a pair
//!   occupies an issue slot, and an SPM/D-cache miss hands the slot to the
//!   friend thread, hiding memory latency between similarly behaving HTC
//!   threads.
//! * [`tcg`] — the Thread Core Group core (§3.1): 4-wide in-order issue
//!   across 4 pairs (8 resident threads), 16 KB L1 I/D, 128 KB SPM, LSQ
//!   address steering, shared-instruction-segment SPM prefetch (§3.1.2),
//!   and a per-core DMA engine.
//! * [`shard`] — the chip cut along its sub-ring boundaries for parallel
//!   discrete-event simulation: one [`shard::SubShard`] per sub-ring
//!   (cores + router + MACT + sub-dispatcher) plus one [`shard::HubShard`]
//!   (main ring + DDR + main scheduler), exchanging timestamped boundary
//!   messages with the junction latency as lookahead.
//! * [`chip`] — [`chip::SmarcoSystem`]: 256 TCG cores on the hierarchical
//!   ring with per-sub-ring MACTs, the direct memory datapath, four DDR4
//!   controllers, and end-to-end request/reply plumbing, assembled from
//!   shards on the PDES engine.
//! * [`dispatch`] — the two-level hardware task dispatcher (§3.7): main
//!   scheduler load-balancing + per-sub-ring laxity-aware binding of
//!   submitted tasks to TCG thread slots.
//! * [`report`] — run statistics (IPC, latency, utilization) consumed by
//!   the bench harness.
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]) and
//!   the three-layer recovery stack: NoC retransmit with exponential
//!   backoff, scheduler re-dispatch off dead cores, chip-level quarantine.
//! * [`error`] — [`error::SmarcoError`], the workspace-wide error type
//!   returned by the builder and attach/submit entrypoints.

#![warn(missing_docs)]

pub mod chip;
pub mod cluster;
pub mod config;
pub mod contract;
pub mod dispatch;
pub mod error;
pub mod fault;
pub mod report;
pub mod shard;
pub mod tcg;
pub mod thread;

pub use chip::{SmarcoSystem, SmarcoSystemBuilder};
pub use cluster::{
    ArrivalProcess, BalancePolicy, Cluster, ClusterBuilder, ClusterReport, FabricConfig,
    SizeDistribution, TrafficProfile,
};
pub use config::{SmarcoConfig, TcgConfig};
pub use error::SmarcoError;
pub use fault::{Fault, FaultPlan, FaultSite, RetryPolicy};
pub use report::{DegradationReport, SmarcoReport};
pub use tcg::TcgCore;
