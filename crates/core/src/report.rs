//! Whole-chip run statistics.

use smarco_sim::stats::{MeanTracker, StatsReport};
use smarco_sim::Cycle;

/// Summary of a [`crate::chip::SmarcoSystem`] run.
///
/// `PartialEq` lets tests assert that an observed run is *bit-identical*
/// to an unobserved one (the observability layer is read-only).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SmarcoReport {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Memory requests that left cores.
    pub requests: u64,
    /// Requests that reached DRAM (after MACT batching).
    pub dram_requests: u64,
    /// End-to-end latency of blocking memory requests.
    pub mem_latency: MeanTracker,
    /// DRAM bandwidth utilization (0–1).
    pub dram_utilization: f64,
    /// Main-ring payload utilization (0–1).
    pub main_ring_utilization: f64,
    /// Sub-ring payload utilization (0–1).
    pub subring_utilization: f64,
    /// Requests collected by MACTs.
    pub mact_collected: u64,
    /// Batches MACTs emitted.
    pub mact_batches: u64,
    /// Fraction of pair-slots idle (averaged over cores).
    pub idle_ratio: f64,
    /// Instruction-fetch miss ratio (averaged over cores).
    pub ifetch_miss_ratio: f64,
    /// D-cache miss ratio (aggregated).
    pub l1d_miss_ratio: f64,
    /// What fault injection did to the run and what recovery cost. All
    /// zeros (the default) on a healthy run, so report equality against
    /// pre-fault baselines still holds.
    pub degradation: DegradationReport,
}

/// The damage-and-recovery section of a [`SmarcoReport`]: how much fault
/// injection perturbed the run and what the three recovery layers
/// (NoC retransmit, scheduler re-dispatch, chip-level quarantine) did
/// about it. Deterministic — bit-identical across worker counts and with
/// cycle skipping on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// NoC injection attempts NACKed and retransmitted (both ring levels).
    pub link_retries: u64,
    /// Tasks re-enqueued after their core died.
    pub redispatches: u64,
    /// Cores killed and quarantined from dispatch.
    pub quarantined_cores: u64,
    /// DDR channels dead and quarantined from the address map.
    pub quarantined_channels: u64,
    /// DRAM requests remapped from a dead channel to a live one.
    pub redirected_requests: u64,
    /// Memory replies that arrived for threads lost with a dead core.
    pub dropped_replies: u64,
    /// Directly-attached threads (not dispatcher-managed) lost with a
    /// dead core — work with no recovery path.
    pub lost_threads: u64,
    /// Requests a DDR stall window delayed.
    pub dram_stalled_requests: u64,
}

impl DegradationReport {
    /// Whether the run saw no faults and spent nothing on recovery.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }

    /// Adds `other`'s counters into this one (per-shard → chip-wide).
    pub fn absorb(&mut self, other: &DegradationReport) {
        self.link_retries += other.link_retries;
        self.redispatches += other.redispatches;
        self.quarantined_cores += other.quarantined_cores;
        self.quarantined_channels += other.quarantined_channels;
        self.redirected_requests += other.redirected_requests;
        self.dropped_replies += other.dropped_replies;
        self.lost_threads += other.lost_threads;
        self.dram_stalled_requests += other.dram_stalled_requests;
    }
}

impl SmarcoReport {
    /// Aggregate instructions per cycle across the chip.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Wall-clock seconds at `freq_ghz`.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9)
    }

    /// Instructions per second at `freq_ghz` (throughput proxy).
    pub fn throughput(&self, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.seconds(freq_ghz)
        }
    }

    /// Request-count reduction factor achieved by MACT batching.
    pub fn request_reduction(&self) -> f64 {
        if self.dram_requests == 0 {
            1.0
        } else {
            self.requests as f64 / self.dram_requests as f64
        }
    }

    /// Throughput of this (degraded) run relative to `healthy`'s: the
    /// goodput fraction a chaos run retains. 1.0 when `healthy` did no
    /// work (nothing to lose).
    pub fn goodput_vs(&self, healthy: &SmarcoReport) -> f64 {
        if healthy.ipc() == 0.0 {
            1.0
        } else {
            self.ipc() / healthy.ipc()
        }
    }

    /// Flattens into a named scalar report for the bench harness.
    pub fn to_stats(&self) -> StatsReport {
        let mut s = StatsReport::new();
        s.set("cycles", self.cycles as f64);
        s.set("instructions", self.instructions as f64);
        s.set("ipc", self.ipc());
        s.set("requests", self.requests as f64);
        s.set("dram_requests", self.dram_requests as f64);
        s.set("mem_latency_mean", self.mem_latency.mean());
        s.set("dram_utilization", self.dram_utilization);
        s.set("main_ring_utilization", self.main_ring_utilization);
        s.set("subring_utilization", self.subring_utilization);
        s.set("mact_collected", self.mact_collected as f64);
        s.set("mact_batches", self.mact_batches as f64);
        s.set("idle_ratio", self.idle_ratio);
        s.set("ifetch_miss_ratio", self.ifetch_miss_ratio);
        s.set("l1d_miss_ratio", self.l1d_miss_ratio);
        if !self.degradation.is_clean() {
            let d = &self.degradation;
            s.set("link_retries", d.link_retries as f64);
            s.set("redispatches", d.redispatches as f64);
            s.set("quarantined_cores", d.quarantined_cores as f64);
            s.set("quarantined_channels", d.quarantined_channels as f64);
            s.set("redirected_requests", d.redirected_requests as f64);
            s.set("dropped_replies", d.dropped_replies as f64);
            s.set("lost_threads", d.lost_threads as f64);
            s.set("dram_stalled_requests", d.dram_stalled_requests as f64);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut r = SmarcoReport {
            cycles: 1000,
            instructions: 2500,
            ..Default::default()
        };
        r.requests = 100;
        r.dram_requests = 25;
        assert!((r.ipc() - 2.5).abs() < 1e-12);
        assert!((r.request_reduction() - 4.0).abs() < 1e-12);
        assert!((r.seconds(1.0) - 1e-6).abs() < 1e-18);
        assert!(r.throughput(1.0) > 0.0);
    }

    #[test]
    fn zero_cycles_safe() {
        let r = SmarcoReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.throughput(1.5), 0.0);
        assert_eq!(r.request_reduction(), 1.0);
    }

    #[test]
    fn stats_flattening() {
        let r = SmarcoReport {
            cycles: 10,
            instructions: 20,
            ..Default::default()
        };
        let s = r.to_stats();
        assert_eq!(s.get("ipc"), Some(2.0));
        assert_eq!(s.get("cycles"), Some(10.0));
    }
}
