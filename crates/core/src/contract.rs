//! The chip's horizon contract: the single derivation shared by the
//! static verifier and the runtime cross-checker.
//!
//! [`horizon_contract`] maps a [`SmarcoConfig`] to the
//! [`HorizonContract`] governing the sharded chip (one shard per
//! sub-ring plus the hub):
//!
//! * **Topology** — sub-ring shards only ever message the hub and the
//!   hub only ever messages sub-ring shards. Sub↔sub and self-sends are
//!   unreachable; an envelope on such a pair is a wiring bug the
//!   debug-build checker turns into a panic.
//! * **Class floors** — junction-crossing traffic (`Up`/`Down`/`Exit`)
//!   is floored at the backend's boundary latency (the engine
//!   lookahead), and
//!   direct-datapath traffic (`DirectReq`/`DirectReply`) at the spoke
//!   latency, which is *longer* than the lookahead on every shipped
//!   config. The second floor is what the generic lookahead assertion
//!   cannot see: a direct-path component whose `next_event` promised a
//!   too-early visibility would pass the window check and still break
//!   cycle skipping.
//!
//! `smarco-lint`'s horizon pass (code `SL0421`) evaluates exactly this
//! object statically; [`SmarcoSystem`](crate::chip::SmarcoSystem)
//! installs exactly this object on its engine — the `Spm::certify`
//! pattern, one predicate with a static and a dynamic face.

use crate::config::SmarcoConfig;
use crate::shard::ChipMsg;
pub use smarco_sim::contract::HorizonContract;

/// Derives the sharded chip's horizon contract from its configuration.
///
/// The shard layout mirrors `SmarcoSystem::assemble`: shards
/// `0..subrings` are the sub-ring shards, shard `subrings` is the hub.
/// The junction floors come from the selected NoC backend's
/// `boundary_latency()` — the promise the backend makes about the
/// soonest a boundary crossing becomes visible in the other half.
pub fn horizon_contract(cfg: &SmarcoConfig) -> HorizonContract {
    let subrings = cfg.noc.subrings;
    let hub = subrings;
    let jl = cfg.noc.boundary_latency();
    let mut c = HorizonContract::unreachable(subrings + 1);
    for sr in 0..subrings {
        c.allow(sr, hub, jl);
        c.allow(hub, sr, jl);
    }
    // Class floors, indexed by `ChipMsg::contract_class`. With no direct
    // datapath configured, no direct-class message can legally exist:
    // `u64::MAX` makes the debug checker reject any that appears.
    let direct_floor = cfg.direct.as_ref().map_or(u64::MAX, |d| d.latency);
    let mut floors = vec![0; 2];
    floors[ChipMsg::CLASS_JUNCTION] = jl;
    floors[ChipMsg::CLASS_DIRECT] = direct_floor;
    c.set_class_floors(floors);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_contract_matches_the_shard_wiring() {
        let cfg = SmarcoConfig::tiny();
        let c = horizon_contract(&cfg);
        let hub = cfg.noc.subrings;
        assert_eq!(c.shards(), cfg.noc.subrings + 1);
        for sr in 0..cfg.noc.subrings {
            assert_eq!(c.pair_floor(sr, hub), cfg.noc.junction_latency);
            assert_eq!(c.pair_floor(hub, sr), cfg.noc.junction_latency);
            assert_eq!(c.pair_floor(sr, sr), u64::MAX, "self-sends forbidden");
            for other in 0..cfg.noc.subrings {
                if other != sr {
                    assert_eq!(c.pair_floor(sr, other), u64::MAX, "sub-sub forbidden");
                }
            }
        }
        let direct = cfg.direct.as_ref().expect("tiny has a direct path");
        assert_eq!(c.class_floor(ChipMsg::CLASS_DIRECT), direct.latency);
        assert_eq!(
            c.class_floor(ChipMsg::CLASS_JUNCTION),
            cfg.noc.junction_latency
        );
        assert!(
            direct.latency > cfg.noc.junction_latency,
            "the direct class floor is the non-vacuous half of the check"
        );
    }

    #[test]
    fn no_direct_path_forbids_direct_class_traffic() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.direct = None;
        let c = horizon_contract(&cfg);
        assert_eq!(c.class_floor(ChipMsg::CLASS_DIRECT), u64::MAX);
    }

    #[test]
    fn chip_floors_pin_window_widening_at_the_junction_latency() {
        // The engine's contract-widening policy can only grow windows
        // beyond the base lookahead when *every* reachable (pair, class)
        // floor exceeds it. On the chip that never happens: junction
        // traffic crosses every sub-ring/hub boundary with exactly
        // `boundary_latency()` delay each cycle, so the minimum reachable
        // floor equals the base lookahead and widening is a no-op. This
        // test documents that pinning — if a config ever raises its
        // slowest class above the junction latency, the engine widens
        // automatically and this stops holding.
        for cfg in [SmarcoConfig::tiny(), SmarcoConfig::smarco()] {
            let c = horizon_contract(&cfg);
            assert_eq!(
                c.min_reachable_floor(),
                Some(cfg.noc.boundary_latency()),
                "chip widening should be pinned at the junction latency"
            );
        }
    }
}
