//! Open-loop traffic: seeded arrival processes and heavy-tailed request
//! sizes.
//!
//! The frontend is *open-loop*: requests arrive on their own clock
//! whether or not the cluster keeps up, which is what makes tail latency
//! and SLO-miss rate meaningful (a closed loop self-throttles and hides
//! overload). Two arrival shapes cover the datacenter cases: a
//! homogeneous Poisson process for steady load, and a diurnal
//! (day/night) profile whose rate swings sinusoidally over a configurable
//! period. Request sizes are bounded-Pareto — most requests are small,
//! a heavy tail is not — the canonical serving-workload shape.
//!
//! Everything is driven by one [`SimRng`] stream through inverse-CDF
//! sampling, so a `(seed, profile)` pair always generates the identical
//! request sequence: same count, same arrival cycles, same sizes. The
//! determinism suite pins this down, and the cluster's bit-identical
//! guarantee inherits from it.

use smarco_sim::rng::SimRng;
use smarco_sim::Cycle;

/// Diurnal rate shape, one multiplier per slot of the period: a raised
/// sine sampled at 8 points (trough at slot 0, peak at slot 4). The
/// piecewise-constant shape keeps non-homogeneous Poisson inversion
/// closed-form (no numeric root-finding on the hot path).
const DIURNAL_SHAPE: [f64; 8] = [0.0, 0.1464, 0.5, 0.8536, 1.0, 0.8536, 0.5, 0.1464];

/// When requests arrive (rates in expected requests per 1000 cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson: exponential inter-arrivals at a fixed rate.
    Poisson {
        /// Expected arrivals per 1000 cycles.
        per_kcycle: f64,
    },
    /// Non-homogeneous Poisson whose rate follows a day/night curve:
    /// piecewise-constant over eight slots per period, shaped like a
    /// raised sine from `base` (trough) to `peak`.
    Diurnal {
        /// Trough rate, per 1000 cycles. Must be positive.
        base_per_kcycle: f64,
        /// Peak rate, per 1000 cycles. Must be at least the base.
        peak_per_kcycle: f64,
        /// Cycles per full day/night swing.
        period: Cycle,
    },
}

impl ArrivalProcess {
    /// Time-averaged arrival rate per 1000 cycles (for the diurnal curve,
    /// the mean of the slot shape — exactly `(base + peak) / 2` for the
    /// symmetric raised sine).
    pub fn mean_per_kcycle(&self) -> f64 {
        match *self {
            Self::Poisson { per_kcycle } => per_kcycle,
            Self::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                ..
            } => {
                let shape_mean = DIURNAL_SHAPE.iter().sum::<f64>() / DIURNAL_SHAPE.len() as f64;
                base_per_kcycle + (peak_per_kcycle - base_per_kcycle) * shape_mean
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        match *self {
            Self::Poisson { per_kcycle } => {
                if !(per_kcycle > 0.0 && per_kcycle.is_finite()) {
                    return Err("arrival rate must be positive and finite".into());
                }
            }
            Self::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period,
            } => {
                if !(base_per_kcycle > 0.0 && base_per_kcycle.is_finite()) {
                    return Err("diurnal base rate must be positive and finite".into());
                }
                if !(peak_per_kcycle >= base_per_kcycle && peak_per_kcycle.is_finite()) {
                    return Err("diurnal peak rate must be >= the base rate".into());
                }
                if period < DIURNAL_SHAPE.len() as Cycle {
                    return Err("diurnal period must cover at least one cycle per slot".into());
                }
            }
        }
        Ok(())
    }

    /// Instantaneous rate per *cycle* at continuous time `t`.
    fn rate_at(&self, t: f64) -> f64 {
        match *self {
            Self::Poisson { per_kcycle } => per_kcycle / 1000.0,
            Self::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period,
            } => {
                let period = period as f64;
                let slot_len = period / DIURNAL_SHAPE.len() as f64;
                let pos = t.rem_euclid(period);
                let slot = ((pos / slot_len) as usize).min(DIURNAL_SHAPE.len() - 1);
                (base_per_kcycle + (peak_per_kcycle - base_per_kcycle) * DIURNAL_SHAPE[slot])
                    / 1000.0
            }
        }
    }

    /// Advances continuous time `t` to the next arrival given one
    /// unit-rate exponential deviate `e`, by inverting the integrated
    /// rate function (exact for the piecewise-constant diurnal curve).
    fn next_arrival(&self, t: f64, mut e: f64) -> f64 {
        match *self {
            Self::Poisson { .. } => t + e / self.rate_at(t),
            Self::Diurnal { period, .. } => {
                let period = period as f64;
                let slot_len = period / DIURNAL_SHAPE.len() as f64;
                let mut t = t;
                loop {
                    let rate = self.rate_at(t);
                    let pos = t.rem_euclid(period);
                    // Distance to the next slot boundary (never zero:
                    // rem_euclid keeps pos strictly below the boundary).
                    let boundary = (pos / slot_len).floor() * slot_len + slot_len;
                    let left = boundary - pos;
                    if e <= rate * left {
                        return t + e / rate;
                    }
                    e -= rate * left;
                    t += left;
                }
            }
        }
    }
}

/// Bounded-Pareto request sizes in work-cycles: power-law body with hard
/// floor and ceiling, the standard heavy-tail model for serving traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeDistribution {
    /// Tail index. Smaller is heavier; `1 < alpha <= 2` gives the classic
    /// finite-mean, high-variance serving tail.
    pub alpha: f64,
    /// Smallest request, in work-cycles (the distribution's `L`).
    pub min_work: Cycle,
    /// Largest request, in work-cycles (the distribution's `H`).
    pub max_work: Cycle,
}

impl SizeDistribution {
    /// The default serving mix: `alpha = 1.5`, sizes 256–8192 work-cycles.
    pub fn serving() -> Self {
        Self {
            alpha: 1.5,
            min_work: 256,
            max_work: 8192,
        }
    }

    fn check(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err("pareto alpha must be positive and finite".into());
        }
        if self.min_work == 0 {
            return Err("minimum request size must be positive".into());
        }
        if self.max_work < self.min_work {
            return Err("maximum request size must be >= the minimum".into());
        }
        Ok(())
    }

    /// Inverse-CDF sample, clamped into `[min_work, max_work]`.
    fn sample(&self, rng: &mut SimRng) -> Cycle {
        let l = self.min_work as f64;
        let h = self.max_work as f64;
        if self.min_work == self.max_work {
            return self.min_work;
        }
        let u = rng.gen_f64();
        let ratio = (l / h).powf(self.alpha);
        let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha);
        (x as Cycle).clamp(self.min_work, self.max_work)
    }

    /// Expected request size in work-cycles (closed form; the `alpha = 1`
    /// special case uses the logarithmic limit).
    pub fn mean_work(&self) -> f64 {
        let l = self.min_work as f64;
        let h = self.max_work as f64;
        if self.min_work == self.max_work {
            return l;
        }
        let a = self.alpha;
        let ratio = (l / h).powf(a);
        if (a - 1.0).abs() < 1e-9 {
            return l / (1.0 - l / h) * (h / l).ln();
        }
        (l.powf(a) / (1.0 - ratio)) * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
    }
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Sequential request id (generation order).
    pub id: u64,
    /// Cycle the request reaches the frontend.
    pub arrival: Cycle,
    /// Request size in work-cycles.
    pub work: Cycle,
}

/// A complete open-loop traffic description: seeded arrivals, sizes, the
/// end-to-end SLO, and how many requests the run offers in total.
///
/// ```
/// use smarco_core::cluster::TrafficProfile;
///
/// let profile = TrafficProfile::poisson(42, 4.0).requests(100);
/// let first: Vec<_> = profile.stream().take(3).collect();
/// // Same seed, same stream — bit-identical arrivals and sizes.
/// let again: Vec<_> = profile.stream().take(3).collect();
/// assert_eq!(first, again);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficProfile {
    /// RNG seed; the whole request sequence is a pure function of it.
    pub seed: u64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Request-size distribution.
    pub sizes: SizeDistribution,
    /// End-to-end service-level objective in cycles: a request completing
    /// more than `slo` cycles after its arrival is an SLO miss.
    pub slo: Cycle,
    /// Total requests the frontend offers before going quiet.
    pub requests: u64,
}

impl TrafficProfile {
    /// Steady Poisson traffic at `per_kcycle` expected requests per 1000
    /// cycles, with the default serving size mix, a 20 000-cycle SLO and
    /// 200 requests.
    pub fn poisson(seed: u64, per_kcycle: f64) -> Self {
        Self {
            seed,
            arrivals: ArrivalProcess::Poisson { per_kcycle },
            sizes: SizeDistribution::serving(),
            slo: 20_000,
            requests: 200,
        }
    }

    /// Diurnal traffic swinging between `base` and `peak` requests per
    /// 1000 cycles over `period` cycles, defaults as in
    /// [`poisson`](Self::poisson).
    pub fn diurnal(seed: u64, base_per_kcycle: f64, peak_per_kcycle: f64, period: Cycle) -> Self {
        Self {
            seed,
            arrivals: ArrivalProcess::Diurnal {
                base_per_kcycle,
                peak_per_kcycle,
                period,
            },
            sizes: SizeDistribution::serving(),
            slo: 20_000,
            requests: 200,
        }
    }

    /// Replaces the size distribution.
    #[must_use]
    pub fn sizes(mut self, sizes: SizeDistribution) -> Self {
        self.sizes = sizes;
        self
    }

    /// Replaces the end-to-end SLO.
    #[must_use]
    pub fn slo(mut self, slo: Cycle) -> Self {
        self.slo = slo;
        self
    }

    /// Replaces the total request count.
    #[must_use]
    pub fn requests(mut self, requests: u64) -> Self {
        self.requests = requests;
        self
    }

    /// Validates the profile (positive rates, sane size bounds, a
    /// positive SLO and request count).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency as a human-readable string.
    pub fn check(&self) -> Result<(), String> {
        self.arrivals.check()?;
        self.sizes.check()?;
        if self.slo == 0 {
            return Err("SLO must be positive".into());
        }
        if self.requests == 0 {
            return Err("traffic must offer at least one request".into());
        }
        Ok(())
    }

    /// Mean offered load in work-cycles per 1000 cycles: arrival rate ×
    /// mean request size. Comparing this against the cluster's aggregate
    /// issue width is lint SL0461's unbounded-queue test.
    pub fn offered_work_per_kcycle(&self) -> f64 {
        self.arrivals.mean_per_kcycle() * self.sizes.mean_work()
    }

    /// The deterministic request stream this profile describes.
    pub fn stream(&self) -> RequestStream {
        RequestStream {
            rng: SimRng::new(self.seed),
            arrivals: self.arrivals,
            sizes: self.sizes,
            t: 0.0,
            emitted: 0,
            total: self.requests,
        }
    }
}

/// Iterator over a profile's requests, in arrival order. Pure function of
/// the profile: two streams from equal profiles yield equal sequences.
#[derive(Debug, Clone)]
pub struct RequestStream {
    rng: SimRng,
    arrivals: ArrivalProcess,
    sizes: SizeDistribution,
    t: f64,
    emitted: u64,
    total: u64,
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted == self.total {
            return None;
        }
        // Unit-rate exponential deviate by inversion; gen_f64 is in
        // [0, 1), so 1 − u is in (0, 1] and the log is finite.
        let e = -(1.0 - self.rng.gen_f64()).ln();
        self.t = self.arrivals.next_arrival(self.t, e);
        let work = self.sizes.sample(&mut self.rng);
        let req = Request {
            id: self.emitted,
            arrival: self.t as Cycle,
            work,
        };
        self.emitted += 1;
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let p = TrafficProfile::poisson(7, 3.0).requests(500);
        let a: Vec<_> = p.stream().collect();
        let b: Vec<_> = p.stream().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: Vec<_> = TrafficProfile::poisson(1, 3.0)
            .requests(50)
            .stream()
            .collect();
        let b: Vec<_> = TrafficProfile::poisson(2, 3.0)
            .requests(50)
            .stream()
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_monotone_and_sized_within_bounds() {
        let p = TrafficProfile::diurnal(11, 1.0, 8.0, 50_000).requests(2_000);
        let mut last = 0;
        for r in p.stream() {
            assert!(r.arrival >= last, "arrivals must not go backwards");
            last = r.arrival;
            assert!(r.work >= p.sizes.min_work && r.work <= p.sizes.max_work);
        }
    }

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        let p = TrafficProfile::poisson(3, 5.0).requests(20_000);
        let last = p.stream().last().unwrap();
        let measured = 20_000.0 / (last.arrival as f64 / 1000.0);
        assert!(
            (measured - 5.0).abs() < 0.5,
            "measured {measured:.2}/kcycle, wanted 5.0"
        );
    }

    #[test]
    fn diurnal_peak_slots_run_hotter_than_trough_slots() {
        let period = 80_000u64;
        let p = TrafficProfile::diurnal(5, 1.0, 10.0, period).requests(50_000);
        let (mut peak, mut trough) = (0u64, 0u64);
        for r in p.stream() {
            let pos = r.arrival % period;
            let slot = (pos * 8 / period) as usize;
            match slot {
                4 => peak += 1,
                0 => trough += 1,
                _ => {}
            }
        }
        assert!(
            peak > trough * 3,
            "peak slot {peak} arrivals vs trough {trough}"
        );
    }

    #[test]
    fn pareto_mean_matches_empirical_mean() {
        let sizes = SizeDistribution::serving();
        let p = TrafficProfile::poisson(9, 4.0).requests(50_000);
        let total: u64 = p.stream().map(|r| r.work).sum();
        let empirical = total as f64 / 50_000.0;
        let analytic = sizes.mean_work();
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical:.1} vs analytic {analytic:.1}"
        );
    }

    #[test]
    fn heavy_tail_is_actually_heavy() {
        // Most requests sit near the floor, but the max dwarfs the median.
        let p = TrafficProfile::poisson(13, 4.0).requests(10_000);
        let mut works: Vec<_> = p.stream().map(|r| r.work).collect();
        works.sort_unstable();
        let median = works[works.len() / 2];
        let max = *works.last().unwrap();
        assert!(median < 1_024, "median {median}");
        assert!(max > 6_000, "max {max}");
    }

    #[test]
    fn offered_load_combines_rate_and_mean_size() {
        let p = TrafficProfile::poisson(1, 2.0);
        let want = 2.0 * p.sizes.mean_work();
        assert!((p.offered_work_per_kcycle() - want).abs() < 1e-9);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        assert!(TrafficProfile::poisson(1, 0.0).check().is_err());
        assert!(TrafficProfile::poisson(1, 2.0).requests(0).check().is_err());
        assert!(TrafficProfile::poisson(1, 2.0).slo(0).check().is_err());
        assert!(TrafficProfile::diurnal(1, 4.0, 2.0, 10_000)
            .check()
            .is_err());
        assert!(TrafficProfile::diurnal(1, 0.0, 2.0, 10_000)
            .check()
            .is_err());
        let bad_sizes = TrafficProfile::poisson(1, 2.0).sizes(SizeDistribution {
            alpha: 1.5,
            min_work: 100,
            max_work: 50,
        });
        assert!(bad_sizes.check().is_err());
        assert!(TrafficProfile::poisson(1, 2.0).check().is_ok());
    }

    #[test]
    fn degenerate_point_mass_sizes_are_fine() {
        let p = TrafficProfile::poisson(1, 2.0).sizes(SizeDistribution {
            alpha: 1.5,
            min_work: 512,
            max_work: 512,
        });
        assert!(p.check().is_ok());
        assert!(p.stream().all(|r| r.work == 512));
        assert!((p.sizes.mean_work() - 512.0).abs() < 1e-9);
    }
}
