//! Rack-scale SmarCo: N chips on an inter-chip fabric, serving a live
//! open-loop request stream (ROADMAP item 2).
//!
//! The cluster is a second, outer PDES level built from the same
//! machinery as the chip. Where [`crate::chip::SmarcoSystem`] shards one
//! chip along its sub-ring boundaries with the junction latency as
//! lookahead, [`Cluster`] shards the rack along its *chip* boundaries
//! with the fabric latency as lookahead: each chip becomes one chip-node
//! shard (driving the whole inner engine window by window through
//! [`SmarcoSystem::advance_until`]), plus one frontend shard that
//! generates seeded Poisson/diurnal arrivals with bounded-Pareto sizes
//! ([`TrafficProfile`]), routes them through a pluggable
//! [`BalancePolicy`], and scores completions against the end-to-end SLO.
//!
//! The two levels form the `PartitionLevel` hierarchy the lint's
//! SL0423/SL0460 passes check: the fabric's `boundary_latency` is the
//! outer lookahead and must dominate the chip's internal
//! `boundary_latency()`, or fabric messages could land inside retired
//! inner windows. [`ClusterBuilder::build`] enforces the same inequality
//! at construction time.
//!
//! Determinism composes across the levels: every chip is bit-identical
//! for any inner worker count (PR 3), the outer engine is bit-identical
//! for any outer worker count, and the traffic stream is a pure function
//! of its seed — so a [`ClusterReport`] is reproducible across workers ×
//! cycle-skip × chaos plans, which `tests/rack_determinism.rs` enforces.

mod balancer;
mod node;
mod report;
mod traffic;

pub use balancer::BalancePolicy;
pub use report::ClusterReport;
pub use traffic::{ArrivalProcess, Request, RequestStream, SizeDistribution, TrafficProfile};

use smarco_sim::contract::HorizonContract;
use smarco_sim::parallel::{Inbox, Outbox, ParallelEngine, Shard};
use smarco_sim::Cycle;

use crate::chip::SmarcoSystem;
use crate::cluster::balancer::Balancer;
use crate::cluster::node::{ChipNode, ClusterMsg, Frontend};
use crate::config::SmarcoConfig;
use crate::error::SmarcoError;
use crate::fault::FaultPlan;

/// Cycles between completion checks in [`Cluster::run`] — same fixed
/// grid idea as the chip's, so every worker count stops at the same
/// cycle.
const CHUNK: Cycle = 2048;

/// The inter-chip fabric: a full crossbar between the frontend and every
/// chip, with one uniform hop latency that doubles as the outer engine's
/// lookahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Cycles one fabric hop takes (frontend → chip or chip → frontend).
    /// Must be at least the chip's internal `boundary_latency()` — the
    /// nested-window proof needs the outer promise to dominate the inner
    /// one (lint SL0460).
    pub latency: Cycle,
}

impl FabricConfig {
    /// A serdes-class inter-chip link: 32 cycles per hop.
    pub fn datacenter() -> Self {
        Self { latency: 32 }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::datacenter()
    }
}

/// One shard of the outer engine: a chip or the traffic frontend.
enum ClusterShard {
    Chip(Box<ChipNode>),
    Frontend(Box<Frontend>),
}

impl ClusterShard {
    fn is_idle(&self) -> bool {
        match self {
            Self::Chip(c) => c.is_idle(),
            Self::Frontend(f) => f.is_idle(),
        }
    }
}

impl Shard for ClusterShard {
    type Msg = ClusterMsg;

    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<ClusterMsg>,
        outbox: &mut Outbox<ClusterMsg>,
    ) {
        match self {
            Self::Chip(c) => c.run_window(from, to, inbox, outbox),
            Self::Frontend(f) => f.run_window(from, to, inbox, outbox),
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            Self::Chip(c) => c.next_event(now),
            Self::Frontend(f) => f.next_event(now),
        }
    }

    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        match self {
            Self::Chip(c) => c.skip_window(from, to),
            Self::Frontend(f) => f.skip_window(from, to),
        }
    }
}

/// A rack of SmarCo chips serving an open-loop request stream.
///
/// # Examples
///
/// ```
/// use smarco_core::cluster::{BalancePolicy, Cluster, TrafficProfile};
///
/// let mut cluster = Cluster::builder()
///     .chips(2)
///     .traffic(TrafficProfile::poisson(42, 6.0).requests(40))
///     .policy(BalancePolicy::ShortestQueue)
///     .build()?;
/// let report = cluster.run(2_000_000);
/// assert_eq!(report.offered, 40);
/// assert_eq!(report.completed, 40);
/// assert!(report.latency.count() == 40);
/// # Ok::<(), smarco_core::SmarcoError>(())
/// ```
pub struct Cluster {
    engine: ParallelEngine<ClusterShard>,
    chips: usize,
    workers: usize,
    policy: BalancePolicy,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("chips", &self.chips)
            .field("now", &self.engine.now())
            .field("workers", &self.workers)
            .field("policy", &self.policy.name())
            .finish()
    }
}

/// Fluent constructor for [`Cluster`], mirroring
/// [`SmarcoSystem::builder`]: describe the rack, then
/// [`build`](Self::build) validates everything at once.
///
/// ```
/// use smarco_core::cluster::{Cluster, FabricConfig, TrafficProfile};
///
/// let cluster = Cluster::builder()
///     .chips(4)
///     .fabric(FabricConfig { latency: 48 })
///     .traffic(TrafficProfile::poisson(7, 2.0).requests(10))
///     .build()?;
/// assert_eq!(cluster.chips(), 4);
/// # Ok::<(), smarco_core::SmarcoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    chips: usize,
    chip: SmarcoConfig,
    fabric: FabricConfig,
    traffic: TrafficProfile,
    policy: BalancePolicy,
    workers: usize,
    cycle_skip: bool,
    fault_plans: Vec<(usize, FaultPlan)>,
}

impl Default for ClusterBuilder {
    /// Four tiny chips on a datacenter fabric under light Poisson load,
    /// round-robin routing, one outer worker. (The default chip is
    /// [`SmarcoConfig::tiny`], not the paper chip: rack experiments sweep
    /// many chips, so opt in to the 256-core configuration per chip with
    /// [`chip`](Self::chip).)
    fn default() -> Self {
        Self {
            chips: 4,
            chip: SmarcoConfig::tiny(),
            fabric: FabricConfig::datacenter(),
            traffic: TrafficProfile::poisson(1, 2.0),
            policy: BalancePolicy::RoundRobin,
            workers: 1,
            cycle_skip: true,
            fault_plans: Vec::new(),
        }
    }
}

impl ClusterBuilder {
    /// Puts `n` chips in the rack.
    ///
    /// ```
    /// use smarco_core::cluster::Cluster;
    ///
    /// let cluster = Cluster::builder().chips(6).build()?;
    /// assert_eq!(cluster.chips(), 6);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn chips(mut self, n: usize) -> Self {
        self.chips = n;
        self
    }

    /// Uses `config` for every chip (its `workers` field is ignored:
    /// inside a cluster each chip runs single-threaded and parallelism
    /// comes from the outer [`workers`](Self::workers)).
    ///
    /// ```
    /// use smarco_core::cluster::Cluster;
    /// use smarco_core::config::SmarcoConfig;
    ///
    /// let cluster = Cluster::builder()
    ///     .chips(2)
    ///     .chip(SmarcoConfig::tiny())
    ///     .build()?;
    /// assert_eq!(cluster.chips(), 2);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn chip(mut self, config: SmarcoConfig) -> Self {
        self.chip = config;
        self
    }

    /// Uses `fabric` as the inter-chip interconnect; its latency becomes
    /// the outer engine's lookahead.
    ///
    /// ```
    /// use smarco_core::cluster::{Cluster, FabricConfig};
    ///
    /// let cluster = Cluster::builder()
    ///     .fabric(FabricConfig { latency: 64 })
    ///     .build()?;
    /// assert_eq!(cluster.chips(), 4);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Uses `traffic` as the open-loop request stream.
    ///
    /// ```
    /// use smarco_core::cluster::{Cluster, TrafficProfile};
    ///
    /// let traffic = TrafficProfile::diurnal(9, 1.0, 6.0, 100_000)
    ///     .requests(25)
    ///     .slo(30_000);
    /// let cluster = Cluster::builder().traffic(traffic).build()?;
    /// assert_eq!(cluster.chips(), 4);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficProfile) -> Self {
        self.traffic = traffic;
        self
    }

    /// Uses `policy` to pick a chip for each request.
    ///
    /// ```
    /// use smarco_core::cluster::{BalancePolicy, Cluster};
    ///
    /// let cluster = Cluster::builder()
    ///     .policy(BalancePolicy::LaxityAware)
    ///     .build()?;
    /// assert_eq!(cluster.policy().name(), "laxity_aware");
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn policy(mut self, policy: BalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Drives the outer engine with `workers` host threads (clamped to at
    /// least 1). Reports are bit-identical for every value.
    ///
    /// ```
    /// use smarco_core::cluster::Cluster;
    ///
    /// let cluster = Cluster::builder().workers(4).build()?;
    /// assert_eq!(cluster.chips(), 4);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables outer-level cycle skipping (default on).
    /// Reports are bit-identical either way.
    ///
    /// ```
    /// use smarco_core::cluster::Cluster;
    ///
    /// let cluster = Cluster::builder().cycle_skip(false).build()?;
    /// assert_eq!(cluster.chips(), 4);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn cycle_skip(mut self, enabled: bool) -> Self {
        self.cycle_skip = enabled;
        self
    }

    /// Injects `plan`'s faults into chip `chip` (repeatable; the last
    /// plan per chip wins). The cluster stays bit-identical across worker
    /// counts under chaos — the determinism suite runs exactly this.
    ///
    /// ```
    /// use smarco_core::cluster::Cluster;
    /// use smarco_core::config::SmarcoConfig;
    /// use smarco_core::fault::FaultPlan;
    ///
    /// let plan = FaultPlan::chaos(42, &SmarcoConfig::tiny());
    /// let cluster = Cluster::builder().fault_plan(0, plan).build()?;
    /// assert_eq!(cluster.chips(), 4);
    /// # Ok::<(), smarco_core::SmarcoError>(())
    /// ```
    #[must_use]
    pub fn fault_plan(mut self, chip: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((chip, plan));
        self
    }

    /// Validates the rack description and assembles the cluster.
    ///
    /// # Errors
    ///
    /// [`SmarcoError::InvalidCluster`] when the geometry or traffic is
    /// inconsistent (zero chips, a fabric hop shorter than the chip's
    /// internal boundary latency — lint SL0460's inequality — or a
    /// malformed profile); [`SmarcoError::NoSuchChip`] when a fault plan
    /// targets a chip outside the rack; [`SmarcoError::InvalidConfig`]
    /// when the per-chip configuration itself is broken.
    ///
    /// ```
    /// use smarco_core::cluster::Cluster;
    /// use smarco_core::error::SmarcoError;
    /// use smarco_core::fault::FaultPlan;
    ///
    /// let err = Cluster::builder().chips(0).build().unwrap_err();
    /// assert!(matches!(err, SmarcoError::InvalidCluster { .. }));
    ///
    /// let err = Cluster::builder()
    ///     .chips(2)
    ///     .fault_plan(5, FaultPlan::none())
    ///     .build()
    ///     .unwrap_err();
    /// assert!(matches!(err, SmarcoError::NoSuchChip { chip: 5, chips: 2 }));
    /// ```
    pub fn build(self) -> Result<Cluster, SmarcoError> {
        if self.chips == 0 {
            return Err(SmarcoError::InvalidCluster {
                reason: "cluster needs at least one chip".into(),
            });
        }
        if self.fabric.latency == 0 {
            return Err(SmarcoError::InvalidCluster {
                reason: "fabric latency must be positive".into(),
            });
        }
        let chip_boundary = self.chip.noc.boundary_latency();
        if self.fabric.latency < chip_boundary {
            return Err(SmarcoError::InvalidCluster {
                reason: format!(
                    "fabric latency {} is below the chip's internal boundary latency \
                     {chip_boundary} (SL0460): outer windows would deliver into retired \
                     inner windows",
                    self.fabric.latency
                ),
            });
        }
        if let Err(reason) = self.traffic.check() {
            return Err(SmarcoError::InvalidCluster { reason });
        }
        for (chip, _) in &self.fault_plans {
            if *chip >= self.chips {
                return Err(SmarcoError::NoSuchChip {
                    chip: *chip,
                    chips: self.chips,
                });
            }
        }

        let frontend_index = self.chips;
        let mut shards = Vec::with_capacity(self.chips + 1);
        for i in 0..self.chips {
            let mut cfg = self.chip.clone();
            cfg.workers = 1;
            cfg.fault = self
                .fault_plans
                .iter()
                .rev()
                .find(|(chip, _)| *chip == i)
                .map(|(_, plan)| plan.clone());
            let chip = SmarcoSystem::builder().config(cfg).build()?;
            shards.push(ClusterShard::Chip(Box::new(ChipNode::new(
                i,
                frontend_index,
                chip,
                self.fabric.latency,
            ))));
        }
        let width = (self.chip.noc.cores() * self.chip.tcg.pairs) as u64;
        let balancer = Balancer::new(self.policy, self.chips, width);
        shards.push(ClusterShard::Frontend(Box::new(Frontend::new(
            self.traffic.stream(),
            balancer,
            self.fabric.latency,
            self.traffic.slo,
        ))));

        let mut engine = ParallelEngine::new(shards, self.fabric.latency);
        engine.set_skip_enabled(self.cycle_skip);
        // The outer horizon contract mirrors the chip's: fabric traffic
        // flows only between the frontend and each chip, never faster
        // than one fabric hop. Debug builds cross-check every envelope.
        let mut contract = HorizonContract::unreachable(self.chips + 1);
        for i in 0..self.chips {
            contract.allow(frontend_index, i, self.fabric.latency);
            contract.allow(i, frontend_index, self.fabric.latency);
        }
        contract.set_class_floors(vec![self.fabric.latency]);
        engine.set_contract(contract, ClusterMsg::contract_class);
        engine.widen_from_contract();

        Ok(Cluster {
            engine,
            chips: self.chips,
            workers: self.workers.max(1),
            policy: self.policy,
        })
    }
}

impl Cluster {
    /// Starts a [`ClusterBuilder`] with the default rack (four tiny
    /// chips, datacenter fabric, light Poisson traffic, round-robin).
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Number of chips in the rack.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// The routing policy in force.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// The cluster's current cycle.
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    /// Whether the run has fully drained: every offered request has
    /// completed, every chip is idle, and no fabric message is in flight.
    pub fn is_done(&self) -> bool {
        self.engine.pending_messages() == 0
            && self.engine.shards().iter().all(ClusterShard::is_idle)
    }

    /// Runs until the request stream is exhausted and every chip drains,
    /// or `max` cycles elapse; returns the report. Completion is checked
    /// on a fixed cycle grid so the stopping point is identical for every
    /// worker count.
    pub fn run(&mut self, max: Cycle) -> ClusterReport {
        while self.engine.now() < max && !self.is_done() {
            let stop = (((self.engine.now() / CHUNK) + 1) * CHUNK).min(max);
            let now = self.engine.now();
            self.engine.run_windowed(stop - now, self.workers);
        }
        self.report()
    }

    fn frontend(&self) -> &Frontend {
        match self.engine.shards().last() {
            Some(ClusterShard::Frontend(f)) => f,
            _ => unreachable!("frontend is always the last shard"),
        }
    }

    /// Builds the cluster-wide report at the current cycle: the
    /// frontend's latency/SLO view plus every chip's [`SmarcoReport`].
    pub fn report(&self) -> ClusterReport {
        let front = self.frontend();
        ClusterReport {
            cycles: self.engine.now(),
            offered: front.offered(),
            completed: front.completed(),
            slo_misses: front.slo_misses(),
            latency: front.latency().clone(),
            chips: self
                .engine
                .shards()
                .iter()
                .filter_map(|s| match s {
                    ClusterShard::Chip(c) => Some(c.chip().report()),
                    ClusterShard::Frontend(_) => None,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_traffic(seed: u64) -> TrafficProfile {
        TrafficProfile::poisson(seed, 8.0).requests(60).slo(40_000)
    }

    fn run_cluster(policy: BalancePolicy, workers: usize, skip: bool) -> ClusterReport {
        Cluster::builder()
            .chips(3)
            .traffic(small_traffic(21))
            .policy(policy)
            .workers(workers)
            .cycle_skip(skip)
            .build()
            .unwrap()
            .run(5_000_000)
    }

    #[test]
    fn cluster_serves_every_request() {
        for policy in BalancePolicy::ALL {
            let r = run_cluster(policy, 1, true);
            assert_eq!(r.offered, 60, "{}", policy.name());
            assert_eq!(r.completed, 60, "{}", policy.name());
            assert_eq!(r.latency.count(), 60);
            assert!(r.instructions() > 0);
            assert!(r.is_clean());
            // Every latency includes two fabric hops.
            assert!(r.latency.min() >= 2.0 * 32.0);
        }
    }

    #[test]
    fn reports_are_bit_identical_across_workers_and_skip() {
        let base = run_cluster(BalancePolicy::LaxityAware, 1, true);
        for (workers, skip) in [(4, true), (1, false), (4, false)] {
            let other = run_cluster(BalancePolicy::LaxityAware, workers, skip);
            assert_eq!(base, other, "workers={workers} skip={skip} diverged");
        }
    }

    #[test]
    fn round_robin_spreads_requests_across_chips() {
        let r = run_cluster(BalancePolicy::RoundRobin, 1, true);
        let busy = r.chips.iter().filter(|c| c.instructions > 0).count();
        assert_eq!(busy, 3, "round-robin must touch every chip");
    }

    #[test]
    fn builder_rejects_broken_racks() {
        assert!(matches!(
            Cluster::builder().chips(0).build(),
            Err(SmarcoError::InvalidCluster { .. })
        ));
        assert!(matches!(
            Cluster::builder()
                .fabric(FabricConfig { latency: 0 })
                .build(),
            Err(SmarcoError::InvalidCluster { .. })
        ));
        // Fabric hop below the chip's internal boundary latency.
        assert!(matches!(
            Cluster::builder()
                .fabric(FabricConfig { latency: 1 })
                .build(),
            Err(SmarcoError::InvalidCluster { .. })
        ));
        assert!(matches!(
            Cluster::builder()
                .traffic(TrafficProfile::poisson(1, 0.0))
                .build(),
            Err(SmarcoError::InvalidCluster { .. })
        ));
        assert!(matches!(
            Cluster::builder().fault_plan(7, FaultPlan::none()).build(),
            Err(SmarcoError::NoSuchChip { chip: 7, chips: 4 })
        ));
    }

    #[test]
    fn chaos_on_one_chip_stays_deterministic_and_contained() {
        let build = |workers: usize| {
            Cluster::builder()
                .chips(2)
                .traffic(small_traffic(5))
                .fault_plan(1, FaultPlan::chaos(42, &SmarcoConfig::tiny()))
                .workers(workers)
                .build()
                .unwrap()
                .run(5_000_000)
        };
        let a = build(1);
        let b = build(4);
        assert_eq!(a, b);
        assert!(!a.is_clean(), "chaos must actually bite");
        assert!(
            a.chips[0].degradation.is_clean(),
            "chaos must stay on chip 1"
        );
    }

    #[test]
    fn open_loop_overload_shows_up_as_slo_misses() {
        // One tiny chip, a hot stream of large requests: the queue grows
        // and the tail blows the SLO — the open-loop property.
        let traffic = TrafficProfile::poisson(3, 40.0)
            .requests(300)
            .slo(5_000)
            .sizes(SizeDistribution {
                alpha: 1.5,
                min_work: 2_000,
                max_work: 16_000,
            });
        let mut cluster = Cluster::builder()
            .chips(1)
            .traffic(traffic)
            .build()
            .unwrap();
        let r = cluster.run(20_000_000);
        assert_eq!(r.completed, 300);
        assert!(
            r.slo_miss_rate() > 0.5,
            "overload should miss most SLOs, got {:.2}",
            r.slo_miss_rate()
        );
    }
}
