//! Cluster-level load balancing: which chip serves the next request.
//!
//! The balancer lives inside the frontend shard and sees only what a real
//! rack-level balancer would: per-chip counts of requests it has routed
//! and not yet seen complete, and the work-cycles behind them. All three
//! policies are pure-integer and tie-break toward the lowest chip index,
//! so routing decisions are bit-reproducible.

use smarco_sim::Cycle;

/// Pluggable routing policy for the cluster frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Cycle through chips in index order, ignoring load.
    RoundRobin,
    /// Join-shortest-queue: route to the chip with the fewest outstanding
    /// requests.
    ShortestQueue,
    /// Laxity-aware: route to the chip where the request's estimated
    /// slack ([`smarco_sched::rack::chip_slack`]) is largest — the
    /// cluster-scope analogue of the chip's laxity scheduler, weighing
    /// backlog *work* and chip issue width instead of request counts.
    LaxityAware,
}

impl BalancePolicy {
    /// Every policy, in bench-sweep order.
    pub const ALL: [BalancePolicy; 3] = [
        BalancePolicy::RoundRobin,
        BalancePolicy::ShortestQueue,
        BalancePolicy::LaxityAware,
    ];

    /// Stable name used in reports and `BENCH_rack.json`.
    pub fn name(&self) -> &'static str {
        match self {
            Self::RoundRobin => "round_robin",
            Self::ShortestQueue => "shortest_queue",
            Self::LaxityAware => "laxity_aware",
        }
    }
}

/// Frontend-resident balancer state: one slot per chip.
#[derive(Debug, Clone)]
pub(crate) struct Balancer {
    policy: BalancePolicy,
    /// Round-robin cursor.
    rr: usize,
    /// Requests routed to each chip and not yet completed.
    outstanding: Vec<u64>,
    /// Work-cycles routed to each chip and not yet completed.
    backlog: Vec<Cycle>,
    /// Aggregate issue width of one chip (cores × pairs).
    width: u64,
}

impl Balancer {
    pub(crate) fn new(policy: BalancePolicy, chips: usize, width: u64) -> Self {
        Self {
            policy,
            rr: 0,
            outstanding: vec![0; chips],
            backlog: vec![0; chips],
            width,
        }
    }

    /// Picks a chip for a request of `work` cycles with `slo` cycles of
    /// end-to-end headroom, and charges the choice to that chip's
    /// outstanding state.
    pub(crate) fn route(&mut self, work: Cycle, slo: Cycle) -> usize {
        let n = self.outstanding.len();
        let chip = match self.policy {
            BalancePolicy::RoundRobin => {
                let c = self.rr % n;
                self.rr += 1;
                c
            }
            BalancePolicy::ShortestQueue => {
                let mut best = 0;
                for c in 1..n {
                    if self.outstanding[c] < self.outstanding[best] {
                        best = c;
                    }
                }
                best
            }
            BalancePolicy::LaxityAware => {
                let mut best = 0;
                let mut best_slack =
                    smarco_sched::rack::chip_slack(slo, 0, self.backlog[0], work, self.width);
                for c in 1..n {
                    let slack =
                        smarco_sched::rack::chip_slack(slo, 0, self.backlog[c], work, self.width);
                    if slack > best_slack {
                        best = c;
                        best_slack = slack;
                    }
                }
                best
            }
        };
        self.outstanding[chip] += 1;
        self.backlog[chip] += work;
        chip
    }

    /// Credits a completed request back to its chip.
    pub(crate) fn complete(&mut self, chip: usize, work: Cycle) {
        self.outstanding[chip] -= 1;
        self.backlog[chip] = self.backlog[chip].saturating_sub(work);
    }

    #[cfg(test)]
    fn outstanding(&self) -> &[u64] {
        &self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_in_index_order() {
        let mut b = Balancer::new(BalancePolicy::RoundRobin, 3, 64);
        let picks: Vec<_> = (0..6).map(|_| b.route(100, 10_000)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn shortest_queue_avoids_the_busy_chip() {
        let mut b = Balancer::new(BalancePolicy::ShortestQueue, 2, 64);
        assert_eq!(b.route(100, 10_000), 0);
        assert_eq!(b.route(100, 10_000), 1);
        // Chip 0 completes, chip 1 still busy: next pick is chip 0.
        b.complete(0, 100);
        assert_eq!(b.route(100, 10_000), 0);
        assert_eq!(b.outstanding(), &[1, 1]);
    }

    #[test]
    fn laxity_aware_weighs_work_not_counts() {
        let mut b = Balancer::new(BalancePolicy::LaxityAware, 2, 64);
        // One giant request on chip 0 vs two small ones on chip 1: JSQ
        // would pick chip 0, laxity-aware sees the backlog and picks 1.
        b.outstanding[0] = 1;
        b.backlog[0] = 1_000_000;
        b.outstanding[1] = 2;
        b.backlog[1] = 200;
        assert_eq!(b.route(100, 10_000), 1);
    }

    #[test]
    fn ties_break_toward_the_lowest_index() {
        let mut jsq = Balancer::new(BalancePolicy::ShortestQueue, 4, 64);
        assert_eq!(jsq.route(100, 10_000), 0);
        let mut lax = Balancer::new(BalancePolicy::LaxityAware, 4, 64);
        assert_eq!(lax.route(100, 10_000), 0);
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<_> = BalancePolicy::ALL.iter().map(BalancePolicy::name).collect();
        assert_eq!(names, vec!["round_robin", "shortest_queue", "laxity_aware"]);
    }
}
