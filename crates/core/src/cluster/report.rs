//! Cluster-wide run statistics: the frontend's latency view plus every
//! chip's [`SmarcoReport`], aggregated.
//!
//! The report derives `PartialEq` end-to-end — latency histogram, SLO
//! counters, and per-chip reports — so "bit-identical across workers ×
//! cycle-skip × chaos" is a single `assert_eq!` in the determinism suite.

use smarco_sim::stats::Percentiles;
use smarco_sim::Cycle;

use crate::report::SmarcoReport;

/// Statistics of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Cluster cycle the report was taken at.
    pub cycles: Cycle,
    /// Requests the frontend generated and routed.
    pub offered: u64,
    /// Requests whose completion reached the frontend.
    pub completed: u64,
    /// Completions that arrived after `arrival + slo`.
    pub slo_misses: u64,
    /// End-to-end latency (arrival → reply at the frontend), in cycles.
    pub latency: Percentiles,
    /// Per-chip reports, in chip-index order.
    pub chips: Vec<SmarcoReport>,
}

impl ClusterReport {
    /// Fraction of completed requests that missed the SLO (0 when
    /// nothing completed).
    pub fn slo_miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_misses as f64 / self.completed as f64
        }
    }

    /// Instructions retired across every chip.
    pub fn instructions(&self) -> u64 {
        self.chips.iter().map(|c| c.instructions).sum()
    }

    /// Whether every chip's degradation counters are clean (no faults
    /// observed, nothing quarantined).
    pub fn is_clean(&self) -> bool {
        self.chips.iter().all(|c| c.degradation.is_clean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_the_empty_run() {
        let r = ClusterReport {
            cycles: 0,
            offered: 0,
            completed: 0,
            slo_misses: 0,
            latency: Percentiles::new(),
            chips: Vec::new(),
        };
        assert_eq!(r.slo_miss_rate(), 0.0);
        assert_eq!(r.instructions(), 0);
        assert!(r.is_clean());
    }

    #[test]
    fn miss_rate_is_a_fraction_of_completions() {
        let mut r = ClusterReport {
            cycles: 100,
            offered: 10,
            completed: 8,
            slo_misses: 2,
            latency: Percentiles::new(),
            chips: Vec::new(),
        };
        assert!((r.slo_miss_rate() - 0.25).abs() < 1e-12);
        r.slo_misses = 0;
        assert_eq!(r.slo_miss_rate(), 0.0);
    }
}
