//! The cluster's PDES shards: one [`ChipNode`] per chip and one
//! [`Frontend`] generating and routing traffic.
//!
//! This is the chip-as-shard facade: a whole
//! [`SmarcoSystem`] — itself a PDES engine over sub-ring shards — becomes
//! one shard of the outer cluster engine. The outer engine windows on the
//! fabric latency; inside each window a [`ChipNode`] advances its chip's
//! clock in lock-step ([`SmarcoSystem::advance_until`]), submitting
//! requests at their boundary-message timestamps and emitting completion
//! messages one fabric hop later. Because every chip is already
//! bit-identical for any inner worker count, and the outer engine is
//! bit-identical for any outer worker count, the cluster's reports are
//! reproducible across the full worker × cycle-skip matrix — the
//! determinism suite proves it, chaos plans included.

use smarco_sim::parallel::{Inbox, Outbox, Shard};
use smarco_sim::stats::Percentiles;
use smarco_sim::Cycle;

use crate::chip::SmarcoSystem;
use crate::cluster::balancer::Balancer;
use crate::cluster::traffic::{Request, RequestStream};

/// Message class for the cluster's horizon contract: every fabric hop
/// (request or completion) costs at least the fabric latency.
pub(crate) const CLASS_FABRIC: usize = 0;

/// Boundary messages on the inter-chip fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClusterMsg {
    /// Frontend → chip: serve this request.
    Request {
        /// Frontend-assigned request id.
        id: u64,
        /// Cycle the request reached the frontend.
        arrival: Cycle,
        /// Absolute end-to-end deadline (`arrival + slo`).
        deadline: Cycle,
        /// Request size in work-cycles.
        work: Cycle,
    },
    /// Chip → frontend: a request finished on-chip.
    Done {
        /// Frontend-assigned request id.
        id: u64,
        /// Which chip served it.
        chip: usize,
        /// Original arrival cycle (echoed so the frontend keeps no map).
        arrival: Cycle,
        /// Absolute end-to-end deadline (echoed).
        deadline: Cycle,
        /// Request size in work-cycles (echoed, to credit the balancer).
        work: Cycle,
        /// Cycle the task exited on-chip.
        exit: Cycle,
    },
}

impl ClusterMsg {
    /// Contract class of this message (all fabric traffic is one class).
    pub(crate) fn contract_class(&self) -> usize {
        CLASS_FABRIC
    }
}

/// Request metadata a chip holds between submission and exit, indexed by
/// the chip-local task id (task ids are sequential from zero).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: u64,
    arrival: Cycle,
    deadline: Cycle,
    work: Cycle,
}

/// One chip wrapped as an outer-engine shard.
pub(crate) struct ChipNode {
    chip: SmarcoSystem,
    /// This chip's shard index (also its cluster-wide chip index).
    index: usize,
    /// The frontend's shard index (one past the last chip).
    frontend: usize,
    /// One fabric hop, in cycles (= the outer lookahead).
    fabric_latency: Cycle,
    /// The chip's internal boundary latency: an exit at cycle `e` reaches
    /// the chip's fabric port (the main scheduler) at `e + inner_boundary`.
    inner_boundary: Cycle,
    /// Metadata for submitted tasks, indexed by chip-local task id.
    in_flight: Vec<InFlight>,
    /// How many entries of `chip.task_exits()` have been emitted.
    exits_seen: usize,
}

impl ChipNode {
    pub(crate) fn new(
        index: usize,
        frontend: usize,
        chip: SmarcoSystem,
        fabric_latency: Cycle,
    ) -> Self {
        let inner_boundary = chip.config().noc.boundary_latency();
        Self {
            chip,
            index,
            frontend,
            fabric_latency,
            inner_boundary,
            in_flight: Vec::new(),
            exits_seen: 0,
        }
    }

    pub(crate) fn chip(&self) -> &SmarcoSystem {
        &self.chip
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.chip.is_done()
    }

    fn submit(&mut self, id: u64, arrival: Cycle, deadline: Cycle, work: Cycle) {
        let task = self.chip.submit_task(
            Box::new(smarco_isa::mix::compute_only(work)),
            deadline,
            work,
            smarco_sched::TaskPriority::Normal,
        );
        debug_assert_eq!(task as usize, self.in_flight.len());
        self.in_flight.push(InFlight {
            id,
            arrival,
            deadline,
            work,
        });
    }

    /// Emits `Done` for every task that exited since the last call. The
    /// reply leaves the chip when the main scheduler observes the exit —
    /// `exit + inner_boundary`, which lands inside the window just run —
    /// so its fabric timestamp is `≥ from + lookahead ≥ window end`: the
    /// outbox's lookahead assertion and the outer horizon contract both
    /// hold by construction, including for short final windows.
    fn emit_exits(&mut self, outbox: &mut Outbox<ClusterMsg>) {
        let n = self.chip.task_exits().len();
        for i in self.exits_seen..n {
            let exit = self.chip.task_exits()[i];
            let meta = self.in_flight[exit.task as usize];
            outbox.send(
                self.frontend,
                exit.exit + self.inner_boundary + self.fabric_latency,
                ClusterMsg::Done {
                    id: meta.id,
                    chip: self.index,
                    arrival: meta.arrival,
                    deadline: meta.deadline,
                    work: meta.work,
                    exit: exit.exit,
                },
            );
        }
        self.exits_seen = n;
    }
}

impl Shard for ChipNode {
    type Msg = ClusterMsg;

    fn run_window(
        &mut self,
        _from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<ClusterMsg>,
        outbox: &mut Outbox<ClusterMsg>,
    ) {
        // Advance the chip to each request's timestamp, submit, repeat;
        // then close out the window. `submit_task` stamps the task with
        // the chip's own clock, so advancing first is what makes the
        // on-chip arrival equal the fabric delivery cycle.
        while let Some(at) = inbox.next_due().filter(|&at| at < to) {
            self.chip.advance_until(at);
            while let Some(msg) = inbox.pop_due(at) {
                if let ClusterMsg::Request {
                    id,
                    arrival,
                    deadline,
                    work,
                } = msg
                {
                    self.submit(id, arrival, deadline, work);
                }
            }
        }
        self.chip.advance_until(to);
        self.emit_exits(outbox);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // A busy chip may act every cycle; a drained one only reacts to
        // fabric messages, which the engine tracks through the inbox.
        if self.chip.is_done() {
            None
        } else {
            Some(now)
        }
    }

    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        // The engine proved the range event-free (chip drained, inbox
        // quiet), so run_window would only have advanced the chip's
        // clock — do exactly that, emitting nothing.
        debug_assert!(self.chip.is_done(), "skipped a busy chip");
        let _ = from;
        self.chip.advance_until(to);
    }
}

/// The traffic frontend: generates open-loop arrivals, routes them, and
/// scores completions against the SLO.
pub(crate) struct Frontend {
    stream: RequestStream,
    /// Next arrival, pre-drawn so `next_event` can promise a horizon.
    next: Option<Request>,
    balancer: Balancer,
    fabric_latency: Cycle,
    slo: Cycle,
    /// Requests routed so far.
    offered: u64,
    /// Completions observed so far.
    completed: u64,
    /// Completions that beat `arrival + slo`.
    slo_misses: u64,
    /// End-to-end latency (arrival → completion seen at the frontend).
    latency: Percentiles,
    /// Requests routed and not yet completed.
    outstanding: u64,
}

impl Frontend {
    pub(crate) fn new(
        mut stream: RequestStream,
        balancer: Balancer,
        fabric_latency: Cycle,
        slo: Cycle,
    ) -> Self {
        let next = stream.next();
        Self {
            stream,
            next,
            balancer,
            fabric_latency,
            slo,
            offered: 0,
            completed: 0,
            slo_misses: 0,
            latency: Percentiles::new(),
            outstanding: 0,
        }
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.next.is_none() && self.outstanding == 0
    }

    pub(crate) fn offered(&self) -> u64 {
        self.offered
    }

    pub(crate) fn completed(&self) -> u64 {
        self.completed
    }

    pub(crate) fn slo_misses(&self) -> u64 {
        self.slo_misses
    }

    pub(crate) fn latency(&self) -> &Percentiles {
        &self.latency
    }

    fn complete(&mut self, msg: ClusterMsg, now: Cycle) {
        let ClusterMsg::Done {
            chip,
            arrival,
            deadline,
            work,
            exit,
            ..
        } = msg
        else {
            return;
        };
        // The reply's fabric delivery cycle is the moment the user sees
        // their answer: exit + the chip's boundary latency + one hop.
        let response = now;
        debug_assert!(exit < response, "reply cannot precede the exit");
        self.latency.record((response - arrival) as f64);
        if response > deadline {
            self.slo_misses += 1;
        }
        self.completed += 1;
        self.outstanding -= 1;
        self.balancer.complete(chip, work);
    }

    fn route(&mut self, req: Request, outbox: &mut Outbox<ClusterMsg>) {
        let deadline = req.arrival + self.slo;
        let chip = self.balancer.route(req.work, self.slo);
        outbox.send(
            chip,
            req.arrival + self.fabric_latency,
            ClusterMsg::Request {
                id: req.id,
                arrival: req.arrival,
                deadline,
                work: req.work,
            },
        );
        self.offered += 1;
        self.outstanding += 1;
    }
}

impl Shard for Frontend {
    type Msg = ClusterMsg;

    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<ClusterMsg>,
        outbox: &mut Outbox<ClusterMsg>,
    ) {
        // Strict cycle order: completions due at a cycle are scored
        // before arrivals at the same cycle route, so the balancer's view
        // at routing time is a deterministic function of simulated time.
        for now in from..to {
            while let Some(msg) = inbox.pop_due(now) {
                self.complete(msg, now);
            }
            while self.next.is_some_and(|r| r.arrival <= now) {
                let req = self.next.take().expect("checked above");
                self.next = self.stream.next();
                self.route(req, outbox);
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The next self-generated event is the next arrival; completions
        // arrive through the inbox, which the engine accounts separately.
        self.next.map(|r| r.arrival.max(now))
    }

    // Default skip_window: an arrival-free range leaves no bookkeeping.
}
