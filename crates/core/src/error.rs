//! The workspace-wide error type for chip construction and job admission.
//!
//! Hand-rolled (`thiserror`-style `Display`/`Error` impls, no derive
//! macros) to keep the workspace dependency-free. Fallible entry points —
//! [`crate::chip::SmarcoSystem::builder`], `attach`, `attach_anywhere`,
//! and the runtime's plan-driven job launchers — all return
//! [`SmarcoError`] so callers can branch on the failure instead of
//! unwinding.

/// Why a chip could not be built or a request could not be admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmarcoError {
    /// The configuration failed validation before any hardware was built.
    InvalidConfig {
        /// Human-readable validation failure.
        reason: String,
    },
    /// The addressed core exists but has no vacant thread slot.
    CoreFull {
        /// Global core index that was full.
        core: usize,
    },
    /// No core anywhere on the chip had a vacant slot. `tried` lists the
    /// sub-rings that were probed and found completely full, in probe
    /// order, so callers can see *where* capacity ran out.
    NoVacancy {
        /// Sub-ring indices probed, every core full.
        tried: Vec<usize>,
    },
    /// The addressed core index is outside the chip's geometry.
    NoSuchCore {
        /// The out-of-range index.
        core: usize,
        /// Cores actually present.
        cores: usize,
    },
    /// A job/DMA plan was internally inconsistent (overlapping regions,
    /// zero task counts, slices that cannot fit their SPM share, …).
    InvalidPlan {
        /// Human-readable plan defect.
        reason: String,
    },
    /// A cluster description failed validation before any chip was built
    /// (zero chips, a fabric slower than light, an empty traffic
    /// profile, …).
    InvalidCluster {
        /// Human-readable validation failure.
        reason: String,
    },
    /// The addressed chip index is outside the cluster's geometry.
    NoSuchChip {
        /// The out-of-range index.
        chip: usize,
        /// Chips actually present.
        chips: usize,
    },
}

impl std::fmt::Display for SmarcoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::CoreFull { core } => write!(f, "core {core} has no vacant thread slot"),
            Self::NoVacancy { tried } => {
                write!(f, "no vacant thread slot on the chip (sub-rings ")?;
                for (i, sr) in tried.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{sr}")?;
                }
                write!(f, " all full)")
            }
            Self::NoSuchCore { core, cores } => {
                write!(f, "core {core} does not exist (chip has {cores} cores)")
            }
            Self::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            Self::InvalidCluster { reason } => write!(f, "invalid cluster: {reason}"),
            Self::NoSuchChip { chip, chips } => {
                write!(f, "chip {chip} does not exist (cluster has {chips} chips)")
            }
        }
    }
}

impl std::error::Error for SmarcoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_unit() {
        let e = SmarcoError::CoreFull { core: 7 };
        assert!(e.to_string().contains("core 7"));
        let e = SmarcoError::NoSuchCore {
            core: 99,
            cores: 16,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("16"));
        let e = SmarcoError::NoVacancy {
            tried: vec![0, 1, 2],
        };
        assert!(e.to_string().contains("0, 1, 2"));
        let e = SmarcoError::InvalidConfig {
            reason: "zero workers".into(),
        };
        assert!(e.to_string().contains("zero workers"));
        let e = SmarcoError::InvalidCluster {
            reason: "zero chips".into(),
        };
        assert!(e.to_string().contains("zero chips"));
        let e = SmarcoError::NoSuchChip { chip: 9, chips: 4 };
        assert!(e.to_string().contains("chip 9"));
        assert!(e.to_string().contains("4 chips"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SmarcoError::InvalidPlan {
            reason: "overlap".into(),
        });
    }
}
