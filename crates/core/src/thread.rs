//! Thread slots and the in-pair pair scheduler (§3.1.1, Fig. 6).
//!
//! Every thread is coupled with a *friend*; only one of the two occupies
//! the pair's issue slot at any time. When the running thread blocks on an
//! SPM/D-cache miss the slot switches to the friend immediately; the
//! blocked thread, once its data returns, waits in the *Ready* state until
//! the friend blocks in turn (alternate execution — exactly the paper's
//! state machine).

use smarco_isa::InstructionStream;
use smarco_sim::Cycle;

/// Scheduling state of a thread slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// May issue when it holds the pair's slot.
    Runnable,
    /// Waiting for a memory reply.
    Blocked,
    /// Reply arrived; waiting for the friend to block (in-pair handoff).
    Ready,
    /// Stream exhausted.
    Done,
    /// No stream attached.
    Vacant,
}

/// One hardware thread context.
pub struct ThreadSlot {
    stream: Option<Box<dyn InstructionStream + Send>>,
    /// Current scheduling state.
    pub state: ThreadState,
    /// The thread cannot issue before this cycle (multi-cycle ops, branch
    /// refill, hit latencies).
    pub stall_until: Cycle,
    /// Outstanding asynchronous DMA transfers.
    pub pending_dma: usize,
    /// Dynamic instructions issued.
    pub instructions: u64,
}

impl std::fmt::Debug for ThreadSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSlot")
            .field("state", &self.state)
            .field("stall_until", &self.stall_until)
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl Default for ThreadSlot {
    fn default() -> Self {
        Self::vacant()
    }
}

impl ThreadSlot {
    /// An empty context.
    pub fn vacant() -> Self {
        Self {
            stream: None,
            state: ThreadState::Vacant,
            stall_until: 0,
            pending_dma: 0,
            instructions: 0,
        }
    }

    /// Attaches a stream, making the slot runnable.
    pub fn attach(&mut self, stream: Box<dyn InstructionStream + Send>) {
        self.stream = Some(stream);
        self.state = ThreadState::Runnable;
        self.stall_until = 0;
        self.pending_dma = 0;
    }

    /// The attached stream's instruction segment, if any.
    pub fn segment(&self) -> Option<(u64, u64)> {
        self.stream
            .as_ref()
            .and_then(smarco_isa::InstructionStream::segment)
    }

    /// Fetches the next instruction; `None` ends the thread.
    pub fn next_instr(&mut self) -> Option<smarco_isa::Instr> {
        self.stream
            .as_mut()
            .and_then(smarco_isa::InstructionStream::next_instr)
    }

    /// Whether the slot holds live work (not done/vacant).
    pub fn is_live(&self) -> bool {
        !matches!(self.state, ThreadState::Done | ThreadState::Vacant)
    }

    /// Rips the stream out of a live slot, leaving it vacant. Used when a
    /// core fails: the unfinished stream is what the dispatcher re-runs
    /// elsewhere. Returns `None` for done/vacant slots.
    pub fn take_stream(&mut self) -> Option<Box<dyn InstructionStream + Send>> {
        if !self.is_live() {
            return None;
        }
        let stream = self.stream.take();
        *self = Self::vacant();
        stream
    }
}

/// The pair scheduler: which thread of each pair holds the issue slot.
///
/// Pure state machine over thread indices so the policy is unit-testable
/// apart from the pipeline. Threads `0..pairs` are primary; thread
/// `pairs + p` (when present) is pair `p`'s friend.
#[derive(Debug, Clone)]
pub struct PairScheduler {
    pairs: usize,
    active: Vec<usize>,
    in_pair: bool,
}

impl PairScheduler {
    /// Creates the scheduler for `pairs` pairs; each pair starts with its
    /// primary thread active.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is zero.
    pub fn new(pairs: usize, in_pair: bool) -> Self {
        assert!(pairs > 0, "need at least one pair");
        Self {
            pairs,
            active: (0..pairs).collect(),
            in_pair,
        }
    }

    /// Number of pairs.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// The thread currently holding pair `p`'s slot.
    pub fn active_thread(&self, p: usize) -> usize {
        self.active[p]
    }

    /// The friend of thread `t`, if a friend slot exists for its pair.
    pub fn friend_of(&self, t: usize, total_slots: usize) -> Option<usize> {
        let f = if t < self.pairs {
            t + self.pairs
        } else {
            t - self.pairs
        };
        (f < total_slots).then_some(f)
    }

    /// Pair index of thread `t`.
    pub fn pair_of(&self, t: usize) -> usize {
        t % self.pairs
    }

    /// Called when the active thread of pair `p` blocks (or exits). Hands
    /// the slot to the friend when the in-pair mechanism is enabled and the
    /// friend is live; returns the newly active thread, if the slot
    /// changed hands.
    pub fn on_block(&mut self, p: usize, slots: &mut [ThreadSlot]) -> Option<usize> {
        let cur = self.active[p];
        let friend = self.friend_of(cur, slots.len())?;
        let switchable = self.in_pair || !slots[cur].is_live();
        if !switchable {
            return None;
        }
        match slots[friend].state {
            ThreadState::Ready => {
                slots[friend].state = ThreadState::Runnable;
                self.active[p] = friend;
                Some(friend)
            }
            ThreadState::Runnable => {
                self.active[p] = friend;
                Some(friend)
            }
            _ => None,
        }
    }

    /// Called when a blocked thread's data returns. Per the paper the
    /// thread resumes only when its friend blocks — unless the friend is
    /// itself blocked/done, in which case it takes the slot immediately.
    pub fn on_unblock(&mut self, t: usize, slots: &mut [ThreadSlot]) {
        let p = self.pair_of(t);
        let friend = self.friend_of(t, slots.len());
        let friend_live_and_active = friend.is_some_and(|f| {
            self.active[p] == f && matches!(slots[f].state, ThreadState::Runnable)
        });
        if friend_live_and_active && self.in_pair {
            // Wait for the friend to block.
            slots[t].state = ThreadState::Ready;
        } else {
            slots[t].state = ThreadState::Runnable;
            self.active[p] = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::mix::compute_only;

    fn slots(n: usize) -> Vec<ThreadSlot> {
        (0..n)
            .map(|_| {
                let mut s = ThreadSlot::vacant();
                s.attach(Box::new(compute_only(1000)));
                s
            })
            .collect()
    }

    #[test]
    fn friend_mapping() {
        let ps = PairScheduler::new(4, true);
        assert_eq!(ps.friend_of(0, 8), Some(4));
        assert_eq!(ps.friend_of(4, 8), Some(0));
        assert_eq!(ps.friend_of(3, 8), Some(7));
        assert_eq!(ps.friend_of(0, 4), None, "no friend slot with 4 threads");
        assert_eq!(ps.pair_of(6), 2);
    }

    #[test]
    fn block_hands_slot_to_friend() {
        let mut ps = PairScheduler::new(4, true);
        let mut sl = slots(8);
        sl[0].state = ThreadState::Blocked;
        assert_eq!(ps.on_block(0, &mut sl), Some(4));
        assert_eq!(ps.active_thread(0), 4);
    }

    #[test]
    fn unblock_waits_for_friend_to_miss() {
        let mut ps = PairScheduler::new(4, true);
        let mut sl = slots(8);
        // Thread 0 blocks; slot goes to 4.
        sl[0].state = ThreadState::Blocked;
        ps.on_block(0, &mut sl);
        // Data returns while 4 still runs: thread 0 parks Ready.
        ps.on_unblock(0, &mut sl);
        assert_eq!(sl[0].state, ThreadState::Ready);
        assert_eq!(ps.active_thread(0), 4);
        // Now 4 blocks: slot returns to 0.
        sl[4].state = ThreadState::Blocked;
        assert_eq!(ps.on_block(0, &mut sl), Some(0));
        assert_eq!(sl[0].state, ThreadState::Runnable);
    }

    #[test]
    fn unblock_takes_slot_when_friend_is_blocked() {
        let mut ps = PairScheduler::new(4, true);
        let mut sl = slots(8);
        sl[0].state = ThreadState::Blocked;
        ps.on_block(0, &mut sl);
        sl[4].state = ThreadState::Blocked;
        ps.on_block(0, &mut sl); // nobody to switch to
        ps.on_unblock(0, &mut sl);
        assert_eq!(sl[0].state, ThreadState::Runnable);
        assert_eq!(ps.active_thread(0), 0);
    }

    #[test]
    fn disabled_in_pair_never_switches_while_live() {
        let mut ps = PairScheduler::new(4, false);
        let mut sl = slots(8);
        sl[0].state = ThreadState::Blocked;
        assert_eq!(ps.on_block(0, &mut sl), None);
        ps.on_unblock(0, &mut sl);
        assert_eq!(sl[0].state, ThreadState::Runnable);
    }

    #[test]
    fn done_thread_hands_over_even_without_in_pair() {
        let mut ps = PairScheduler::new(4, false);
        let mut sl = slots(8);
        sl[0].state = ThreadState::Done;
        assert_eq!(ps.on_block(0, &mut sl), Some(4));
    }

    #[test]
    fn single_thread_pair_has_no_handoff() {
        let mut ps = PairScheduler::new(2, true);
        let mut sl = slots(2); // threads 0,1 → two pairs, no friends
        sl[0].state = ThreadState::Blocked;
        assert_eq!(ps.on_block(0, &mut sl), None);
        ps.on_unblock(0, &mut sl);
        assert_eq!(sl[0].state, ThreadState::Runnable);
    }

    #[test]
    fn slot_lifecycle() {
        let mut s = ThreadSlot::vacant();
        assert!(!s.is_live());
        s.attach(Box::new(compute_only(2)));
        assert!(s.is_live());
        assert!(s.next_instr().is_some());
        assert_eq!(s.state, ThreadState::Runnable);
    }
}
