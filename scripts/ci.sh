#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Everything runs --offline:
# the workspace has no external dependencies and must stay buildable
# without a network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline -q --workspace

echo "ci: all gates passed"
