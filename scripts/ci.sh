#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Everything runs --offline:
# the workspace has no external dependencies and must stay buildable
# without a network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
# Beyond the default lint set, a low-noise pedantic subset the codebase
# commits to keeping clean.
cargo clippy --offline --workspace --all-targets -- -D warnings \
    -W clippy::semicolon_if_nothing_returned \
    -W clippy::redundant_closure_for_method_calls \
    -W clippy::explicit_iter_loop \
    -W clippy::uninlined_format_args

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline -q --workspace

echo "==> parallel determinism (sharded chip vs sequential, all benchmarks)"
cargo test --offline -q --test parallel_determinism

echo "==> cycle skipping (skip-on vs skip-off bit-identical, all benchmarks)"
cargo test --offline -q --test cycle_skip

echo "==> fault determinism (seeded chaos bit-identical across workers x skip)"
cargo test --offline -q --test fault_determinism

echo "==> rack determinism (seeded traffic reproducible; cluster reports"
echo "    bit-identical across workers x skip, healthy and chaos)"
cargo test --offline -q --test rack_determinism

echo "==> rack smoke (2-chip cluster serves a short stream; every request"
echo "    completes and the latency histogram is non-empty)"
cargo run --offline --release -p smarco-bench --bin rack -- --smoke

echo "==> NoC backend determinism (ring/mesh/buffered bit-identical across"
echo "    workers x skip, criticality routing on, all benchmarks)"
cargo test --offline -q --test noc_backends

echo "==> noc_sweep smoke (backends x benchmarks x criticality matrix;"
echo "    exits non-zero if any backend fails to drain a benchmark)"
cargo run --offline --release -p smarco-bench --bin noc_sweep

echo "==> chaos smoke (seeded fault run; exits non-zero on zero retries)"
cargo run --offline --release -p smarco-bench --bin scale -- --faults 42

echo "==> scale bench (PDES speedup sweep + cycle-skip study; asserts"
echo "    bit-identical reports and a non-zero skip ratio on TeraSort)"
cargo run --offline --release -p smarco-bench --bin scale

echo "==> profiling contract (profiled runs bit-identical, exact phase sums)"
cargo test --offline -q --test profiling

echo "==> perf-regression gate (sequential engine vs committed baseline;"
echo "    plus a 4-worker leg on hosts with >=4 CPUs when the baseline"
echo "    has one; SMARCO_PERF_GATE=skip bypasses on noisy hosts)"
cargo run --offline --release -p smarco-bench --bin profile -- --gate scripts/perf_baseline.json

echo "==> smarco-lint (static verifier, warnings are errors; sweep covers"
echo "    every config and benchmark under healthy and chaos fault plans)"
cargo run --offline --release -p smarco-bench --bin lint -- --deny-warnings

echo "==> model-contract gate (horizon checker bit-identical on all benchmarks)"
cargo test --offline -q --test model_contract

echo "==> negative-config corpus (each seeded bad config must reproduce its"
echo "    codes; exit 1 = diagnostics present as expected, 2 = regression)"
corpus_json="$(mktemp)"
trap 'rm -f "$corpus_json"' EXIT
set +e
cargo run --offline --release -p smarco-bench --bin lint -- --corpus --json "$corpus_json"
corpus_status=$?
set -e
if [ "$corpus_status" -ne 1 ]; then
    echo "ci: corpus gate failed (exit $corpus_status, expected 1)" >&2
    exit 1
fi
for code in SL0420 SL0421 SL0422 SL0423 SL0430 SL0431 SL0440 SL0441 SL0450 SL0460 SL0461; do
    if ! grep -q "\"code\":\"$code\"" "$corpus_json"; then
        echo "ci: corpus no longer produces $code" >&2
        exit 1
    fi
done

echo "ci: all gates passed"
