//! Hardware task dispatch on the chip (§3.7 end to end): submit RNC tasks
//! with deadlines to the main scheduler, let the per-sub-ring
//! laxity-aware chain tables bind them to TCG thread slots, and watch the
//! exits land inside their deadlines — with the tasks' real memory
//! traffic contending on the rings and DRAM the whole time.
//!
//! ```text
//! cargo run --release --example task_dispatch
//! ```

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::sched::TaskPriority;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

fn main() {
    let cfg = SmarcoConfig::tiny();
    let mut sys = SmarcoSystem::builder()
        .config(cfg.clone())
        .build()
        .expect("valid config");

    // 192 RNC tasks on a 128-slot chip — oversubscribed, so the chain
    // tables matter. Every 6th task is a high-priority control task.
    let deadline = 400_000;
    let tasks = 192u64;
    for i in 0..tasks {
        let params = Benchmark::Rnc.thread_params(
            0x100_0000 + (i % 4) * (16 << 20),
            4 << 20,
            0x8000_0000 + (i % 4) * (1 << 20),
            0,
            1,
            1_500,
        );
        let priority = if i % 6 == 0 {
            TaskPriority::High
        } else {
            TaskPriority::Normal
        };
        sys.submit_task(
            Box::new(HtcStream::new(params, SimRng::new(i))),
            deadline,
            20_000, // work estimate the laxity computation uses
            priority,
        );
    }

    let report = sys.run(100_000_000);
    let exits = sys.task_exits();
    let met = exits.iter().filter(|e| e.met_deadline()).count();
    let first = exits.iter().map(|e| e.exit).min().unwrap_or(0);
    let last = exits.iter().map(|e| e.exit).max().unwrap_or(0);

    println!("Hardware task dispatch: {tasks} RNC tasks, deadline {deadline} cycles");
    println!(
        "  chip             : {} cores, {} thread slots",
        cfg.noc.cores(),
        cfg.total_threads()
    );
    println!(
        "  completed        : {} tasks in {} cycles",
        exits.len(),
        report.cycles
    );
    println!("  exits            : {first}..{last}");
    println!(
        "  deadlines met    : {met}/{} ({:.1}%)",
        exits.len(),
        100.0 * met as f64 / exits.len() as f64
    );
    println!("  chip IPC         : {:.2}", report.ipc());
    println!(
        "  memory           : {} requests, {:.0}-cycle mean latency",
        report.requests,
        report.mem_latency.mean()
    );
}
