//! The conservative parallel-PDES engine (§4.2's "parallel simulation
//! platform"): partition a model into shards, advance them in lookahead-
//! bounded windows on separate threads, and get results identical to
//! sequential execution.
//!
//! The shards here are independent sub-ring NoCs exchanging packets
//! through their junctions with a fixed (≥ lookahead) bridging latency —
//! exactly the decomposition the SmarCo chip admits.
//!
//! ```text
//! cargo run --release --example parallel_pdes
//! ```

use std::time::Instant;

use smarco::noc::link::{LinkConfig, Transmittable};
use smarco::noc::ring::Ring;
use smarco::sim::parallel::{Inbox, Outbox, ParallelEngine, Shard};
use smarco::sim::rng::SimRng;
use smarco::sim::Cycle;

/// Bridging latency between sub-rings (the lookahead). Conservative PDES
/// can only parallelize work inside a lookahead window, so this knob
/// decides whether synchronization or computation dominates — the example
/// runs both a tight and a generous value to show the trade-off.
const LOOKAHEADS: [Cycle; 2] = [4, 64];

#[derive(Debug, Clone, PartialEq)]
struct Pkt(u32);
impl Transmittable for Pkt {
    fn bytes(&self) -> u32 {
        self.0
    }
}

/// One sub-ring plus its traffic source; cross-shard messages are packets
/// bridged between junctions.
struct SubringShard {
    id: usize,
    n_shards: usize,
    lookahead: Cycle,
    ring: Ring<Pkt>,
    rng: SimRng,
    sent: u64,
    received: u64,
    checksum: u64,
}

impl SubringShard {
    fn new(id: usize, n_shards: usize, lookahead: Cycle) -> Self {
        Self {
            id,
            n_shards,
            lookahead,
            ring: Ring::new(17, LinkConfig::sub_ring()),
            rng: SimRng::new(1000 + id as u64),
            sent: 0,
            received: 0,
            checksum: 0,
        }
    }
}

impl Shard for SubringShard {
    type Msg = Pkt;

    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<Pkt>,
        outbox: &mut Outbox<Pkt>,
    ) {
        for now in from..to {
            // Packets bridged in from other sub-rings enter at the
            // junction (position 16) addressed to a local core.
            while let Some(pkt) = inbox.pop_due(now) {
                let dst = self.rng.gen_index(16);
                if self.ring.inject(16, dst, pkt).is_some() {
                    self.received += 1;
                }
            }
            // Local cores occasionally send to a random other sub-ring.
            if self.rng.chance(0.3) {
                let src = self.rng.gen_index(16);
                let bytes = 1 + self.rng.gen_range(8) as u32;
                self.sent += 1;
                let _ = self.ring.inject(src, 16, Pkt(bytes));
            }
            for (pos, _hops, pkt) in self.ring.tick(now) {
                if pos == 16 {
                    // Reached the junction: bridge to a random peer after
                    // the fixed junction latency.
                    let mut peer = self.rng.gen_index(self.n_shards);
                    if peer == self.id {
                        peer = (peer + 1) % self.n_shards;
                    }
                    // Windows are at most one lookahead long, so `now +
                    // lookahead` always lands at or past the window end —
                    // the conservative contract holds by construction.
                    outbox.send(peer, now + self.lookahead, pkt);
                } else {
                    self.received += 1;
                    self.checksum = self.checksum.wrapping_mul(31).wrapping_add(pos as u64);
                }
            }
        }
    }
}

fn build(n: usize, lookahead: Cycle) -> Vec<SubringShard> {
    (0..n)
        .map(|id| SubringShard::new(id, n, lookahead))
        .collect()
}

fn main() {
    let shards = 16;
    let cycles = 20_000;
    let host = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    println!(
        "Conservative PDES over {shards} sub-ring shards, {cycles} cycles (host has {host} CPU{}):",
        if host == 1 { "" } else { "s" }
    );
    for lookahead in LOOKAHEADS {
        let t0 = Instant::now();
        let mut seq = ParallelEngine::new(build(shards, lookahead), lookahead);
        seq.run_sequential(cycles);
        let t_seq = t0.elapsed();

        let t0 = Instant::now();
        let mut par = ParallelEngine::new(build(shards, lookahead), lookahead);
        par.run_parallel(cycles);
        let t_par = t0.elapsed();

        let (mut sent, mut received) = (0, 0);
        for (s, p) in seq.shards().iter().zip(par.shards()) {
            assert_eq!(s.checksum, p.checksum, "shard {} diverged", s.id);
            assert_eq!(s.received, p.received);
            sent += s.sent;
            received += s.received;
        }
        println!(
            "  lookahead {lookahead:>2}: sent {sent}, delivered {received}; sequential {t_seq:.2?}, parallel {t_par:.2?} ({:.2}x)",
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
    }
    println!("  (results checksum-verified identical between modes)");
    println!(
        "Determinism is the point: parallel execution must reproduce the\n\
         sequential run bit-for-bit. Wall-clock speedup additionally needs\n\
         (a) real host cores and (b) windows long enough to amortize each\n\
         barrier — which is why the chip's natural shard boundary is the\n\
         junction latency."
    );
}
