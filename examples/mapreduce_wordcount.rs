//! WordCount two ways: the *semantic* MapReduce engine computing a real
//! answer, and the *timing* MapReduce framework measuring how long the
//! same job shape takes on the simulated chip (§3.6, Fig. 15).
//!
//! ```text
//! cargo run --release --example mapreduce_wordcount
//! ```

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::isa::InstructionStream;
use smarco::runtime::functional::map_reduce;
use smarco::runtime::mapreduce::{
    run_mapreduce, MapReduceApp, MapReduceConfig, MapTask, ReduceTask,
};
use smarco::sim::rng::SimRng;
use smarco::workloads::kernels::wordcount;
use smarco::workloads::{Benchmark, HtcStream};

/// Timing model of the WordCount job: every map task scans its (SPM-
/// staged) slice counting words into a hash table; reducers fold the
/// per-partition counts.
struct WordCountApp;

impl MapReduceApp for WordCountApp {
    fn map_stream(&self, t: &MapTask) -> Box<dyn InstructionStream + Send> {
        let mut p =
            Benchmark::WordCount.thread_params(t.slice_base, t.slice_len, 0x3000_0000, 0, 1, 1_200);
        if t.in_spm {
            // Output buffer and hot hash-bucket window live in the SPM
            // share alongside the staged slice.
            p.out_base = t.slice_base + t.slice_len;
            p.out_len = 4 << 10;
            p.table_hot_base = Some(t.slice_base);
            p.table_hot_bytes = p.table_hot_bytes.min(4 << 10);
        }
        Box::new(HtcStream::new(p, SimRng::new(t.seed)))
    }
    fn reduce_stream(&self, t: &ReduceTask) -> Box<dyn InstructionStream + Send> {
        let mut p = Benchmark::WordCount.thread_params(
            t.partition_base,
            t.partition_len,
            0x3000_0000,
            0,
            1,
            400,
        );
        if t.in_spm {
            // Same layout as the map side: without this the default
            // 256 KB output buffer overruns the task's SPM share
            // (smarco-lint flags it as SL0201/SL0303).
            p.out_base = t.partition_base + t.partition_len;
            p.out_len = 4 << 10;
            p.table_hot_base = Some(t.partition_base);
            p.table_hot_bytes = p.table_hot_bytes.min(4 << 10);
        }
        Box::new(HtcStream::new(p, SimRng::new(t.seed)))
    }
}

fn main() {
    // ---- Semantic run: a real answer from real text. ----
    let docs = [
        "the quick brown fox jumps over the lazy dog",
        "the dog barks and the fox runs",
        "quick thinking wins the day",
    ];
    let counts = map_reduce(
        &docs,
        |d| wordcount(d).into_iter().collect::<Vec<_>>(),
        |_k, vs: &[u64]| vs.iter().sum(),
        4,
    );
    println!("WordCount (semantic engine, 4 reduce partitions):");
    let mut top: Vec<_> = counts.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (word, n) in top.iter().take(5) {
        println!("  {word:<8} {n}");
    }

    // ---- Timing run: the same job shape on the simulated chip. ----
    let cfg = SmarcoConfig::tiny();
    let mut sys = SmarcoSystem::builder()
        .config(cfg.clone())
        .build()
        .expect("valid config");
    let tasks = (3 * cfg.noc.cores_per_subring * 8) as u64; // 3 map sub-rings
    let slice = 6 << 10;
    let mr = MapReduceConfig {
        threads_per_core: 8,
        phase_budget: 100_000_000,
        ..MapReduceConfig::split(cfg.noc.subrings, 0x100_0000, tasks * slice)
    };
    let run = run_mapreduce(&mut sys, &WordCountApp, &mr).expect("valid plan");
    println!(
        "\nWordCount (timing model on a {}-core chip):",
        cfg.noc.cores()
    );
    println!(
        "  map tasks    : {} ({} cycles)",
        run.map_tasks, run.map_cycles
    );
    println!(
        "  reduce tasks : {} ({} cycles)",
        run.reduce_tasks, run.reduce_cycles
    );
    println!("  total        : {} cycles", run.total_cycles());
    println!("  chip IPC     : {:.2}", run.report.ipc());
    println!(
        "  MACT         : {} requests collected into {} batches",
        run.report.mact_collected, run.report.mact_batches
    );
}
