//! Hard-real-time task scheduling: the hardware laxity-aware scheduler vs
//! a software Deadline Scheduler on one sub-ring's RNC task set (§3.7,
//! Fig. 21).
//!
//! ```text
//! cargo run --release --example realtime_scheduling
//! ```

use smarco::sched::executor::run_tasks_preemptive;
use smarco::sched::{DeadlineScheduler, LaxityAwareScheduler, Task};
use smarco::sim::rng::SimRng;

fn main() {
    // 128 RNC thread tasks share one sub-ring (64 running slots) and one
    // hard deadline; each needs about half the deadline of solo work.
    let deadline = 340_000u64;
    let mut rng = SimRng::new(7);
    let tasks: Vec<Task> = (0..128)
        .map(|i| {
            let mean = deadline / 2 - deadline / 50;
            let spread = mean / 12;
            Task::new(i, 0, deadline, mean - spread / 2 + rng.gen_range(spread))
        })
        .collect();

    println!("128 RNC tasks, deadline {deadline} cycles, 64 running slots\n");
    for (label, report) in [
        (
            "software Deadline Scheduler (20k-cycle OS quantum)",
            run_tasks_preemptive(
                &mut DeadlineScheduler::with_overhead(200),
                tasks.clone(),
                64,
                20_000,
                100_000_000,
            ),
        ),
        (
            "hardware laxity-aware scheduler (fine-grained)",
            run_tasks_preemptive(
                &mut LaxityAwareScheduler::subring(),
                tasks.clone(),
                64,
                4_000,
                100_000_000,
            ),
        ),
    ] {
        let (min, max) = report.exit_range();
        println!("{label}:");
        println!("  exits {}..{} (spread {})", min, max, report.exit_spread());
        println!(
            "  deadline success rate: {:.1}%\n",
            report.success_rate() * 100.0
        );
    }
    println!(
        "Least-laxity-first dispatch equalizes progress, so every task exits\n\
         just before the deadline instead of spreading across it."
    );
}
