//! Quickstart: build a small SmarCo chip, run an HTC workload on it, and
//! read the headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

fn main() {
    // A 64-core chip (4 sub-rings × 16 cores) with MACT and the direct
    // datapath enabled; `SmarcoConfig::smarco()` would build the full
    // 256-core machine.
    let mut cfg = SmarcoConfig::smarco();
    cfg.noc.subrings = 4;
    cfg.noc.mem_ctrls = 4;
    cfg.dram.channels = 4;
    if let Some(d) = cfg.direct.as_mut() {
        d.subrings = 4;
    }
    let mut sys = SmarcoSystem::builder()
        .config(cfg.clone())
        .build()
        .expect("valid config");

    // Four KMP string-matching threads per core, each scanning its
    // sub-ring's slice of the text in the interleaved MapReduce layout.
    let cps = cfg.noc.cores_per_subring;
    let team = (cps * 4) as u64;
    let mut seed = 1;
    for core in 0..sys.cores_len() {
        let sr = (core / cps) as u64;
        for t in 0..4 {
            let j = ((core % cps) * 4 + t) as u64;
            let params = Benchmark::Kmp.thread_params(
                0x100_0000 + sr * (64 << 20), // this sub-ring's text slice
                16 << 20,
                0x8000_0000 + sr * (1 << 20), // shared pattern tables
                j,
                team,
                2_000, // instructions per thread
            );
            sys.attach(core, Box::new(HtcStream::new(params, SimRng::new(seed))))
                .expect("vacant thread slot");
            seed += 1;
        }
    }

    let report = sys.run(50_000_000);
    println!(
        "SmarCo quickstart — {} cores, {} threads",
        cfg.noc.cores(),
        sys.cores_len() * 4
    );
    println!("  cycles            : {}", report.cycles);
    println!("  instructions      : {}", report.instructions);
    println!("  chip IPC          : {:.2}", report.ipc());
    println!("  memory requests   : {}", report.requests);
    println!(
        "  after MACT        : {} ({:.2}x reduction)",
        report.dram_requests,
        report.request_reduction()
    );
    println!(
        "  mean mem latency  : {:.0} cycles",
        report.mem_latency.mean()
    );
    println!(
        "  DRAM utilization  : {:.1}%",
        report.dram_utilization * 100.0
    );
    println!(
        "  throughput @1.5GHz: {:.2e} instructions/s",
        report.throughput(cfg.freq_ghz)
    );
}
