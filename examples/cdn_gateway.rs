//! The motivating CDN experiment (Fig. 2): a video-delivery node on a
//! conventional processor is NIC-bound — the CPU idles while its caches
//! and branch predictors still thrash.
//!
//! ```text
//! cargo run --release --example cdn_gateway
//! ```

use smarco::baseline::{ConventionalSystem, XeonConfig};
use smarco::sim::rng::SimRng;
use smarco::workloads::cdn::CdnConfig;
use smarco::workloads::HtcStream;

fn main() {
    let cdn = CdnConfig::paper();
    let cfg = XeonConfig::small();
    let window_s = 0.0002; // service window of simulated time
    let window_cycles = (window_s * cfg.freq_ghz * 1e9) as u64;

    println!(
        "CDN node: {} Gbps NIC, {} Mbps streams → at most {} concurrent clients\n",
        cdn.nic_gbps,
        cdn.stream_mbps,
        cdn.max_clients()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>9}",
        "clients", "cpu_util", "branch_miss", "l1_miss"
    );
    for clients in [50usize, 100, 200, 400] {
        let mut sys = ConventionalSystem::new(cfg);
        for c in 0..clients {
            sys.spawn(Box::new(HtcStream::new(
                cdn.connection_params(c, window_s),
                SimRng::new(77 + c as u64),
            )));
        }
        let r = sys.run(window_cycles * 4);
        let capacity = (cfg.cores * cfg.issue_width) as f64 * window_cycles as f64;
        println!(
            "{:>8} {:>9.1}% {:>11.1}% {:>8.1}%",
            clients,
            (r.issue_used as f64 / capacity).min(1.0) * 100.0,
            (1.0 - r.branches.ratio()) * 100.0,
            (1.0 - r.l1d.ratio()) * 100.0
        );
    }
    println!(
        "\nEven at the NIC limit the CPU runs below 10% utilization — the\n\
         mismatch that motivates a throughput-oriented many-core design."
    );
}
